"""Virtual address space, page-aligned buffers, and first-touch placement.

The paper models a unified shared virtual address space (Sec. IV-A) with
page-aligned allocations (Sec. IV-D, to avoid unintentional false sharing)
and a first-touch page placement policy (Sec. IV-C1): the first chiplet to
touch a page becomes that page's *home node*, i.e. the chiplet whose L2/L3
bank and HBM stack back the page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Cache line size in bytes (Table I: 64B lines at every level).
LINE_SIZE = 64

#: Page size in bytes. GPU vendors use page-aligned array allocations
#: (Sec. VI, "Fine-grained Hardware Range Based Flush").
PAGE_SIZE = 4096

#: Lines per page (used to map a line to its page's home chiplet).
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE


def line_of(addr: int) -> int:
    """Return the line-aligned address containing byte address ``addr``."""
    return addr & ~(LINE_SIZE - 1)


def line_index(addr: int) -> int:
    """Return the global line index of byte address ``addr``."""
    return addr // LINE_SIZE


def page_of(addr: int) -> int:
    """Return the page index containing byte address ``addr``."""
    return addr // PAGE_SIZE


def lines_in_range(start: int, end: int) -> Iterator[int]:
    """Yield line indices covering the byte range ``[start, end)``."""
    if end <= start:
        return
    first = start // LINE_SIZE
    last = (end - 1) // LINE_SIZE
    for idx in range(first, last + 1):
        yield idx


@dataclass(frozen=True)
class Buffer:
    """A page-aligned global-memory allocation (a *data structure*).

    CPElide tracks coherence at this granularity: each row of the Chiplet
    Coherence Table corresponds to one buffer (Sec. III-A).

    Attributes:
        name: Human-readable identifier (e.g. ``"A"`` or ``"weights"``).
        base: Byte base address; always page-aligned.
        size: Size in bytes; rounded up to a whole number of pages.
        buffer_id: Dense id assigned by the :class:`AddressSpace`.
    """

    name: str
    base: int
    size: int
    buffer_id: int

    @property
    def end(self) -> int:
        """One past the last byte of the allocation."""
        return self.base + self.size

    @property
    def num_lines(self) -> int:
        """Number of cache lines the buffer spans."""
        return (self.size + LINE_SIZE - 1) // LINE_SIZE

    @property
    def first_line(self) -> int:
        """Global index of the buffer's first cache line."""
        return self.base // LINE_SIZE

    def line_range(self) -> Tuple[int, int]:
        """Return ``(first_line, last_line_exclusive)`` global line indices."""
        return self.first_line, self.first_line + self.num_lines

    def slice_lines(self, part: int, num_parts: int) -> Tuple[int, int]:
        """Contiguously partition the buffer's lines into ``num_parts``.

        Returns the ``(first, last_exclusive)`` global line indices of
        partition ``part``. This mirrors static kernel-wide WG partitioning
        (Sec. IV-C1) where chiplet *i* works on the *i*-th contiguous slice.
        """
        if not 0 <= part < num_parts:
            raise ValueError(f"part {part} out of range for {num_parts} parts")
        n = self.num_lines
        lo = self.first_line + (n * part) // num_parts
        hi = self.first_line + (n * (part + 1)) // num_parts
        return lo, hi

    def byte_range_of_slice(self, part: int, num_parts: int) -> Tuple[int, int]:
        """Byte-address range of partition ``part`` (for range annotations)."""
        lo, hi = self.slice_lines(part, num_parts)
        return lo * LINE_SIZE, hi * LINE_SIZE

    def contains_line(self, line: int) -> bool:
        """Whether global line index ``line`` falls inside this buffer."""
        first, last = self.line_range()
        return first <= line < last


class AddressSpace:
    """Page-aligned bump allocator for the unified virtual address space.

    All workload buffers are allocated through this class so that they are
    page-aligned (avoiding unintentional false sharing, Sec. IV-D) and so
    that buffer ids are dense and stable.
    """

    #: Allocations start above the null page.
    _BASE = PAGE_SIZE

    def __init__(self) -> None:
        self._next = self._BASE
        self._buffers: List[Buffer] = []

    def alloc(self, name: str, size: int) -> Buffer:
        """Allocate ``size`` bytes (rounded up to whole pages)."""
        if size <= 0:
            raise ValueError(f"buffer {name!r} must have positive size, got {size}")
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        buf = Buffer(name=name, base=self._next, size=pages * PAGE_SIZE,
                     buffer_id=len(self._buffers))
        self._next += pages * PAGE_SIZE
        self._buffers.append(buf)
        return buf

    @property
    def buffers(self) -> List[Buffer]:
        """All allocations, in allocation order."""
        return list(self._buffers)

    def buffer_of_line(self, line: int) -> Optional[Buffer]:
        """Return the buffer containing global line index ``line``, if any."""
        addr = line * LINE_SIZE
        # Buffers are allocated in increasing address order; binary search.
        lo, hi = 0, len(self._buffers)
        while lo < hi:
            mid = (lo + hi) // 2
            buf = self._buffers[mid]
            if addr < buf.base:
                hi = mid
            elif addr >= buf.end:
                lo = mid + 1
            else:
                return buf
        return None

    def footprint_bytes(self) -> int:
        """Total bytes allocated so far."""
        return self._next - self._BASE


@dataclass
class HomeMap:
    """First-touch page placement policy (Sec. IV-C1).

    Maps each page to its home chiplet: the first chiplet to touch a page
    becomes its home. The home chiplet's L3 bank and HBM stack back the
    page, and in the Baseline/CPElide protocols the home chiplet's L2 is
    where remote requests are forwarded.

    ``lines_per_page`` is configurable so that placement granularity can
    scale with the simulator's cache-scale knob: at paper scale a 4 KB
    page is tiny next to multi-MB arrays, and a scaled-down run must keep
    that ratio or false page sharing at slice boundaries dominates.
    """

    num_chiplets: int
    lines_per_page: int = LINES_PER_PAGE
    _homes: Dict[int, int] = field(default_factory=dict)
    _segments_cache: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = (
        field(default_factory=dict))
    # Memoization support: a running 128-bit hash over the assignment
    # stream (placements are permanent, so an order-sensitive rolling
    # hash is a digest of the whole map) and an optional journal of the
    # assignments made during one kernel, replayable as a delta.
    _memo_hash: Optional[object] = field(default=None, repr=False,
                                         compare=False)
    _journal: Optional[List[Tuple[int, int]]] = field(default=None,
                                                      repr=False,
                                                      compare=False)

    def __post_init__(self) -> None:
        if self.lines_per_page <= 0:
            raise ValueError(
                f"lines_per_page must be positive, got {self.lines_per_page}")

    def home_of_line(self, line: int, toucher: int) -> int:
        """Return the home chiplet of ``line``, assigning it on first touch."""
        page = line // self.lines_per_page
        home = self._homes.get(page)
        if home is None:
            if not 0 <= toucher < self.num_chiplets:
                raise ValueError(f"chiplet {toucher} out of range")
            self._homes[page] = toucher
            if self._memo_hash is not None:
                self._memo_note(page, toucher)
            return toucher
        return home

    def peek_home_of_line(self, line: int) -> Optional[int]:
        """Return the home chiplet of ``line`` without assigning one."""
        return self._homes.get(line // self.lines_per_page)

    def home_segments(self, start: int, end: int,
                      toucher: int) -> List[Tuple[int, int, int]]:
        """Split ``[start, end)`` into maximal same-home segments.

        Returns ``(seg_start, seg_end, home)`` pieces in ascending order,
        assigning unplaced pages to ``toucher`` — exactly the homes an
        ascending per-line :meth:`home_of_line` walk would produce, with
        one dictionary probe per page instead of one per line.

        Page homes are permanent once assigned, so a range whose pages
        were all already placed has a permanent answer; those are
        memoized, making the common repeat query (kernels re-touch the
        same slices every iteration) a single dictionary probe.
        """
        if start >= end:
            return []
        if not 0 <= toucher < self.num_chiplets:
            raise ValueError(f"chiplet {toucher} out of range")
        cached = self._segments_cache.get((start, end))
        if cached is not None:
            return cached
        lpp = self.lines_per_page
        homes = self._homes
        first_page = start // lpp
        last_page = (end - 1) // lpp
        segs: List[Tuple[int, int, int]] = []
        assigned = False
        seg_start = start
        cur = homes.get(first_page)
        if cur is None:
            homes[first_page] = cur = toucher
            if self._memo_hash is not None:
                self._memo_note(first_page, toucher)
            assigned = True
        for page in range(first_page + 1, last_page + 1):
            home = homes.get(page)
            if home is None:
                homes[page] = home = toucher
                if self._memo_hash is not None:
                    self._memo_note(page, toucher)
                assigned = True
            if home != cur:
                boundary = page * lpp
                segs.append((seg_start, boundary, cur))
                seg_start = boundary
                cur = home
        segs.append((seg_start, end, cur))
        if not assigned:
            self._segments_cache[(start, end)] = segs
        return segs

    def home_histogram(self, lines, default: int = 0) -> Dict[int, int]:
        """Count an iterable of lines by home chiplet, without assigning
        homes (unplaced pages count toward ``default``). Used to batch
        per-stack DRAM accounting over bulk miss/victim streams."""
        lpp = self.lines_per_page
        get = self._homes.get
        out: Dict[int, int] = {}
        cur_page = -1
        cur_home = default
        for line in lines:
            page = line // lpp
            if page != cur_page:
                # Miss/victim streams are page-local; reuse the last
                # page's lookup instead of probing per line.
                cur_page = page
                home = get(page)
                cur_home = default if home is None else home
            out[cur_home] = out.get(cur_home, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Memoization support (incremental digest + assignment journal)
    # ------------------------------------------------------------------
    #
    # Placements are permanent, so the map's whole history is the stream
    # of `(page, home)` assignments: a rolling hash over that stream is a
    # digest of the current state, updated in O(1) per first touch, and a
    # journal of one kernel's assignments is a complete, replayable
    # delta. `_segments_cache` is excluded: it only memoizes permanent
    # fully-placed answers, so stale entries are still correct.

    def _memo_note(self, page: int, home: int) -> None:
        """Fold one assignment into the rolling hash (and journal)."""
        self._memo_hash.update(b"%d:%d;" % (page, home))
        if self._journal is not None:
            self._journal.append((page, home))

    def memo_enable(self) -> None:
        """Start maintaining the rolling digest (idempotent).

        Seeds the hash with the assignments made so far so that enabling
        late is equivalent to having tracked from the start.
        """
        if self._memo_hash is None:
            import hashlib

            h = hashlib.blake2b(digest_size=16)
            for page, home in self._homes.items():
                h.update(b"%d:%d;" % (page, home))
            self._memo_hash = h

    def memo_digest(self) -> bytes:
        """The current 128-bit digest (requires :meth:`memo_enable`)."""
        return self._memo_hash.copy().digest()

    def memo_begin_journal(self) -> None:
        """Start recording assignments into a fresh journal."""
        self._journal = []

    def memo_take_journal(self) -> Tuple[Tuple[int, int], ...]:
        """Stop recording and return the journal since the last begin."""
        journal = tuple(self._journal)
        self._journal = None
        return journal

    def memo_apply_journal(self, journal) -> None:
        """Replay a recorded assignment journal (and keep the digest in
        step), exactly reproducing the placements the recorded kernel
        made."""
        homes = self._homes
        h = self._memo_hash
        for page, home in journal:
            homes[page] = home
            h.update(b"%d:%d;" % (page, home))

    @property
    def num_placed_pages(self) -> int:
        """Number of pages that have been placed so far."""
        return len(self._homes)

    def placement_histogram(self) -> List[int]:
        """Pages homed per chiplet (diagnostic for placement skew)."""
        hist = [0] * self.num_chiplets
        for home in self._homes.values():
            hist[home] += 1
        return hist

    def page_homes(self) -> Tuple[Tuple[int, int], ...]:
        """Every ``(page, home)`` assignment, sorted by page.

        A pure read for end-of-run state comparison (the differential
        oracle fingerprints the placement with it); sorting makes the
        fingerprint independent of first-touch order.
        """
        return tuple(sorted(self._homes.items()))
