"""Local Data Share (LDS) scratchpad model.

Each CU has a 64 KB software-managed scratchpad (Table I). The LDS is not
coherent and is unaffected by kernel-boundary synchronization, so the model
only accounts access counts for the energy breakdown (Fig. 9) and the
timing model's compute-phase overlap. Workloads declare their LDS traffic
explicitly (e.g. LUD is LDS-heavy, Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LocalDataShare:
    """Aggregate LDS access accounting for one chiplet.

    Attributes:
        size_bytes: Per-CU LDS capacity (Table I: 64 KB).
        latency_cycles: LDS access latency (Table I: 65 cycles).
        accesses: Total LDS accesses recorded so far.
    """

    size_bytes: int = 64 * 1024
    latency_cycles: int = 65
    accesses: int = 0

    def record(self, count: int) -> None:
        """Record ``count`` LDS accesses."""
        if count < 0:
            raise ValueError(f"LDS access count must be >= 0, got {count}")
        self.accesses += count

    def reset(self) -> None:
        """Clear the access counter."""
        self.accesses = 0
