"""Virtual-to-physical address translation for range operations.

Sec. VI, *Fine-grained Hardware Range Based Flush*: CPElide's software
hints carry virtual addresses but GPU L2 caches are physically addressed,
so targeted range flushes need translation support. Since GPU vendors use
page-aligned array allocations, a range flush can be broken into
page-wise requests, each translated into its physical page and then
walked at the L2.

The simulator's caches are indexed by the virtual line id (a flat UVM
space with an identity mapping), so this module's job is the *mechanism
and cost accounting*: chunking ranges into page requests, counting
translations, and charging the page walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.memory.address import LINE_SIZE, PAGE_SIZE


@dataclass(frozen=True)
class PageSpan:
    """One translated, physically-contiguous page's line range."""

    virtual_page: int
    physical_page: int
    first_line: int
    last_line: int  # exclusive

    def lines(self) -> Iterator[int]:
        """Line ids covered by the page span."""
        return iter(range(self.first_line, self.last_line))


@dataclass
class AddressTranslator:
    """Page-table walker for range-based flush/invalidate requests.

    Attributes:
        page_size: Translation granularity (4 KB, page-aligned arrays).
        walk_latency_cycles: Cost of one translation (a TLB/page-table
            walk issued through the core, Sec. VI).
        translations: Page translations performed so far.
    """

    page_size: int = PAGE_SIZE
    walk_latency_cycles: float = 120.0
    translations: int = 0

    def translate_range(self, start: int, end: int) -> List[PageSpan]:
        """Break byte range ``[start, end)`` into translated page spans."""
        if end <= start:
            return []
        spans: List[PageSpan] = []
        first_page = start // self.page_size
        last_page = (end - 1) // self.page_size
        for page in range(first_page, last_page + 1):
            self.translations += 1
            page_start = max(start, page * self.page_size)
            page_end = min(end, (page + 1) * self.page_size)
            spans.append(PageSpan(
                virtual_page=page,
                physical_page=page,  # flat UVM identity mapping
                first_line=page_start // LINE_SIZE,
                last_line=(page_end + LINE_SIZE - 1) // LINE_SIZE,
            ))
        return spans

    def translate_ranges(self, ranges: Sequence[Tuple[int, int]]
                         ) -> List[PageSpan]:
        """Translate several byte ranges."""
        spans: List[PageSpan] = []
        for start, end in ranges:
            spans.extend(self.translate_range(start, end))
        return spans

    def walk_cycles(self, num_spans: int) -> float:
        """Serialized cost of translating ``num_spans`` pages."""
        return num_spans * self.walk_latency_cycles

    def reset(self) -> None:
        """Clear the translation counter."""
        self.translations = 0
