"""HBM main-memory model.

Table I: 16 GB HBM in 4-high stacks at 1000 MHz; the device's HBM is
physically divided across chiplets (Sec. II-A), so each chiplet owns a
stack and a slice of the physical address space (determined by the
first-touch home map). The model accounts access counts per chiplet-stack
and exposes latency/bandwidth parameters to the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class DRAMModel:
    """Per-stack HBM access accounting.

    Attributes:
        num_stacks: One HBM stack per chiplet.
        latency_cycles: Average access latency seen past the L3.
        bandwidth_bytes_per_sec: Peak per-stack bandwidth.
    """

    num_stacks: int
    latency_cycles: int = 500
    bandwidth_bytes_per_sec: float = 256e9
    reads: List[int] = field(default_factory=list)
    writes: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_stacks <= 0:
            raise ValueError(f"num_stacks must be positive, got {self.num_stacks}")
        if not self.reads:
            self.reads = [0] * self.num_stacks
        if not self.writes:
            self.writes = [0] * self.num_stacks

    def record_read(self, stack: int, count: int = 1) -> None:
        """Record ``count`` line reads served by ``stack``."""
        self.reads[stack] += count

    def record_write(self, stack: int, count: int = 1) -> None:
        """Record ``count`` line writes absorbed by ``stack``."""
        self.writes[stack] += count

    @property
    def total_reads(self) -> int:
        """Line reads across all stacks."""
        return sum(self.reads)

    @property
    def total_writes(self) -> int:
        """Line writes across all stacks."""
        return sum(self.writes)

    @property
    def total_accesses(self) -> int:
        """All line accesses across all stacks."""
        return self.total_reads + self.total_writes

    def reset(self) -> None:
        """Clear all counters."""
        self.reads = [0] * self.num_stacks
        self.writes = [0] * self.num_stacks
