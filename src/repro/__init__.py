"""CPElide reproduction: efficient multi-chiplet GPU implicit synchronization.

A from-scratch Python reproduction of *CPElide: Efficient Multi-Chiplet GPU
Implicit Synchronization* (MICRO 2024): a trace-driven MCM-GPU simulator
(caches, interconnect, command processors), the CPElide Chiplet Coherence
Table and elision engine, the Baseline and HMG comparators, 24 workload
models, and the experiment harnesses regenerating every figure and table
of the paper's evaluation.

Quick start (the :mod:`repro.api` facade is the documented entry point)::

    from repro import simulate, sweep

    for protocol in ("baseline", "hmg", "cpelide"):
        result = simulate("babelstream", protocol)
        print(protocol, result.wall_cycles)

    # Or the whole suite at once, parallel and cached:
    res = sweep(jobs=4)
    print(res.report.summary())
"""

from repro.coherence import (
    BaselineProtocol,
    CPElideProtocol,
    CPElideTimestampProtocol,
    HMGProtocol,
    LeaseLedger,
    MonolithicProtocol,
    ProtocolSpec,
    TimestampProtocol,
    get_protocol,
    make_protocol,
    protocol_names,
    protocols,
    register_protocol,
    unregister_protocol,
)
from repro.core import ChipletCoherenceTable, ChipletState, ElisionEngine
from repro.cp import AccessMode, KernelPacket, Placement
from repro.energy import EnergyModel
from repro.gpu import Device, GPUConfig, SimulationResult, Simulator, monolithic_equivalent
from repro.hip import HipRuntime
from repro.metrics import RunMetrics, format_table, geomean
from repro.timing import TimingModel
from repro.workloads import (
    HIGH_REUSE,
    LOW_REUSE,
    WORKLOAD_NAMES,
    Kernel,
    KernelArg,
    Workload,
    build_workload,
)
from repro.cp.dispatcher import KernelResources, LocalDispatcher
from repro.analysis import (
    bar_chart,
    grouped_bar_chart,
    profile_table_occupancy,
    trace_sync_ops,
)
from repro.engine import (
    ResultCache,
    SweepReport,
    SweepResult,
    SweepRunner,
    SweepSpec,
)
from repro.errors import (
    CacheError,
    ConfigError,
    InvariantViolation,
    OracleDivergence,
    ReproError,
)
from repro.obs import EventTracer, MetricRegistry, NULL_TRACER, Tracer
from repro.api import __api_version__, default_config, simulate, sweep

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "BaselineProtocol",
    "CPElideProtocol",
    "ChipletCoherenceTable",
    "ChipletState",
    "Device",
    "ElisionEngine",
    "EnergyModel",
    "GPUConfig",
    "HIGH_REUSE",
    "HMGProtocol",
    "HipRuntime",
    "Kernel",
    "KernelArg",
    "KernelPacket",
    "LOW_REUSE",
    "MonolithicProtocol",
    "Placement",
    "RunMetrics",
    "SimulationResult",
    "Simulator",
    "TimingModel",
    "WORKLOAD_NAMES",
    "KernelResources",
    "LocalDispatcher",
    "Workload",
    "bar_chart",
    "build_workload",
    "grouped_bar_chart",
    "profile_table_occupancy",
    "trace_sync_ops",
    "format_table",
    "geomean",
    "CPElideTimestampProtocol",
    "LeaseLedger",
    "ProtocolSpec",
    "TimestampProtocol",
    "get_protocol",
    "make_protocol",
    "monolithic_equivalent",
    "protocol_names",
    "protocols",
    "register_protocol",
    "unregister_protocol",
    "ResultCache",
    "SweepReport",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "default_config",
    "simulate",
    "sweep",
    "CacheError",
    "ConfigError",
    "EventTracer",
    "InvariantViolation",
    "MetricRegistry",
    "NULL_TRACER",
    "OracleDivergence",
    "ReproError",
    "Tracer",
    "__api_version__",
    "__version__",
]
