"""The exception hierarchy of the reproduction.

Everything the package raises deliberately derives from
:class:`ReproError`, so downstream scripts can catch one base class at
the :mod:`repro.api` boundary instead of fishing for bare built-ins::

    from repro.api import simulate
    from repro.errors import ReproError, ConfigError

    try:
        result = simulate("square", "cpelide")
    except ConfigError as exc:       # bad knob / bad spec
        ...
    except ReproError as exc:        # anything else the simulator raised
        ...

Each concrete class *also* derives from the built-in it historically
was (``ConfigError`` is a ``ValueError``, ``CacheError`` a
``RuntimeError``, ``InvariantViolation`` and ``OracleDivergence``
``AssertionError``\\ s), so pre-hierarchy callers that caught the
built-ins keep working unchanged.

Hierarchy::

    ReproError
    ├── ConfigError         (ValueError)       bad GPUConfig / spec / CLI knob
    ├── CacheError          (RuntimeError)     result-cache misconfiguration
    ├── JobCancelled        (RuntimeError)     a queued/running job was cancelled
    ├── InvariantViolation  (AssertionError)   repro.check sanitizer failure
    └── OracleDivergence    (AssertionError)   cross-path differential mismatch
"""

from __future__ import annotations

__all__ = [
    "CacheError",
    "ConfigError",
    "InvariantViolation",
    "JobCancelled",
    "OracleDivergence",
    "ReproError",
]


class ReproError(Exception):
    """Base class of every deliberate ``repro`` exception."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration: a bad :class:`~repro.gpu.config.GPUConfig`
    field, an unknown workload/protocol/trace-path name, a malformed
    sweep spec, or an API call whose arguments cannot be honored."""


class CacheError(ReproError, RuntimeError):
    """The on-disk result cache is misconfigured (e.g. the code-version
    salt references source files that do not exist)."""


class JobCancelled(ReproError, RuntimeError):
    """A job was cancelled through its
    :class:`~repro.engine.jobs.CancelToken` — either while queued or at
    the next kernel boundary of an in-flight simulation. Raising it
    unwinds the cell's execution so its shared-cache claim is abandoned
    (released) instead of left to expire."""


class InvariantViolation(ReproError, AssertionError):
    """A :mod:`repro.check` coherence invariant failed.

    Derives from :class:`AssertionError`: a violation is a simulator
    bug, never a workload property, and must abort the run loudly.
    """


class OracleDivergence(ReproError, AssertionError):
    """The cross-path differential oracle found two trace paths (or a
    traced and an untraced run) producing different results."""
