"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — the registered workloads and protocols.
* ``run <workload>`` — simulate one workload under one or more protocols
  and print a comparison table.
* ``trace <workload>`` — print the sync-operation trace (which
  acquires/releases fired, and why).
* ``occupancy [<workload> ...]`` — Chiplet Coherence Table occupancy.

Figures and tables have their own CLI: ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.analysis.occupancy import profile_suite
from repro.analysis.sync_trace import trace_sync_ops
from repro.experiments.occupancy import report as occupancy_report
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.metrics.report import format_table
from repro.workloads.suite import EXTRA_WORKLOADS, WORKLOAD_NAMES, build_workload

PROTOCOL_NAMES = ("baseline", "cpelide", "cpelide-range", "cpelide-driver",
                  "hmg", "hmg-wb", "nosync")


def _config(args) -> GPUConfig:
    return GPUConfig(num_chiplets=args.chiplets, scale=args.scale)


def cmd_list(args) -> int:
    print("workloads (Table II):")
    for name in WORKLOAD_NAMES:
        print(f"  {name}")
    print("extra workloads:")
    for name in EXTRA_WORKLOADS:
        print(f"  {name}")
    print("protocols:")
    for name in PROTOCOL_NAMES:
        print(f"  {name}")
    return 0


def cmd_run(args) -> int:
    config = _config(args)
    rows: List[List[object]] = []
    baseline_cycles = None
    for protocol in args.protocols:
        workload = build_workload(args.workload, config)
        result = Simulator(config, protocol,
                           scheduler=args.scheduler).run(workload)
        if baseline_cycles is None:
            baseline_cycles = result.wall_cycles
        acc = result.metrics.total_accesses()
        sync = result.metrics.total_sync()
        rows.append([
            protocol,
            result.wall_cycles,
            baseline_cycles / result.wall_cycles,
            acc.l2_miss_rate,
            result.metrics.total_traffic().total,
            sync.acquires_elided + sync.releases_elided,
            result.energy["total"] * 1e6,
        ])
    print(format_table(
        ["protocol", "cycles", f"speedup vs {args.protocols[0]}",
         "L2 miss rate", "flits", "syncs elided", "energy (uJ)"],
        rows,
        title=(f"{args.workload} on {config.num_chiplets} chiplets "
               f"(scale {config.scale:g})")))
    return 0


def cmd_trace(args) -> int:
    config = _config(args)
    workload = build_workload(args.workload, config)
    trace = trace_sync_ops(workload, config, args.protocols[0])
    print(trace.render(limit=args.limit))
    return 0


def cmd_occupancy(args) -> int:
    config = _config(args)
    names = args.workloads or None
    print(occupancy_report(profile_suite(config, names)))
    return 0


def main(argv=None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CPElide reproduction: simulate chiplet-GPU workloads.")
    parser.add_argument("--scale", type=float, default=1 / 32,
                        help="simulation scale (default 1/32)")
    parser.add_argument("--chiplets", type=int, default=4,
                        help="chiplet count (default 4)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and protocols")

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload", choices=WORKLOAD_NAMES + EXTRA_WORKLOADS)
    run_p.add_argument("--protocols", nargs="+", default=["baseline", "hmg",
                                                          "cpelide"],
                       choices=PROTOCOL_NAMES)
    run_p.add_argument("--scheduler", default="static",
                       choices=("static", "locality"))

    trace_p = sub.add_parser("trace", help="print the sync-op trace")
    trace_p.add_argument("workload", choices=WORKLOAD_NAMES + EXTRA_WORKLOADS)
    trace_p.add_argument("--protocols", nargs="+", default=["cpelide"],
                         choices=PROTOCOL_NAMES)
    trace_p.add_argument("--limit", type=int, default=40)

    occ_p = sub.add_parser("occupancy", help="coherence-table occupancy")
    occ_p.add_argument("workloads", nargs="*",
                       help="workload subset (default: all 24)")

    args = parser.parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "trace": cmd_trace,
                "occupancy": cmd_occupancy}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
