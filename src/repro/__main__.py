"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — the registered workloads and protocols.
* ``run <workload>`` — simulate one workload under one or more protocols
  and print a comparison table.
* ``trace <workload> [<protocol>]`` — run one simulation with an
  :class:`~repro.obs.EventTracer` attached and export the structured
  event trace: ``--format text`` (default: event census, aggregated
  metrics, and the human-readable sync trace), ``chrome`` (Perfetto /
  ``chrome://tracing`` ``trace_event`` JSON), ``jsonl``, ``csv``
  (metric distributions), or ``sync`` (the legacy analytic sync-op
  trace). ``--out FILE`` writes to a file instead of stdout.
* ``occupancy [<workload> ...]`` — Chiplet Coherence Table occupancy.
* ``bench`` — time the trace paths against each other: the batched run
  path vs the per-line reference on the partitioned sweep
  (``BENCH_trace.json``), the memoized path vs the run path on the
  iterative sweep (``BENCH_memo.json``), and the tracing overhead of
  the disabled/recording observability hooks (``--sweep obs``,
  ``BENCH_obs.json``). Reports land in ``benchmarks/perf/`` with a
  copy at the repo root for perf-trajectory tooling that scans
  root-level ``BENCH_*.json``.

``run`` and ``occupancy`` also accept ``--trace-out FILE`` to attach an
observability tracer to the sweep and export it (format inferred from
the extension: ``.json`` → Chrome trace, ``.csv`` → CSV, else JSONL).
* ``check`` — the differential oracle: run the suite across trace paths
  x protocols, demand bit-identical serialized results and final
  machine state, and report the first divergent kernel otherwise
  (``--sanitize`` additionally asserts coherence invariants at every
  kernel boundary; see ``repro.check``).
* ``dist`` — run a sweep through the distributed engine: cells shard
  into content-keyed work units over a shared, file-locked result cache
  with in-flight dedupe. ``--mode run`` executes locally with
  ``--workers`` processes; ``--mode scatter/work/gather`` splits the
  sweep across any hosts that share ``--work-dir``.
* ``explore`` — successive-halving Pareto search over chiplet count x
  coherence-table capacity x L2 size, scored on (cpelide cycles,
  hardware-cost proxy); prints the frontier of the final rung.
* ``serve`` — simulation-as-a-service: an HTTP job API over the sweep
  engine (``POST /v1/simulate``, ``POST /v1/sweep``, job polling, SSE
  progress streams, cancellation). Jobs from any number of clients
  dedupe through the shared result cache; admission control sheds
  overload with ``429`` + ``Retry-After``. See ``docs/server.md``.

``run`` and ``occupancy`` execute through the sweep engine: ``--jobs N``
fans simulations out over worker processes, and completed cells are
served from the on-disk result cache (disable with ``--no-cache``).
Protocol choices come from the coherence registry, so a newly registered
protocol is immediately runnable here.

Figures and tables have their own CLI: ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.analysis.sync_trace import trace_sync_ops
from repro.coherence.base import protocol_names
from repro.experiments import occupancy as occupancy_experiment
from repro.gpu.config import GPUConfig
from repro.gpu.trace_path import TracePath
from repro.metrics.report import format_table
from repro.workloads.suite import EXTRA_WORKLOADS, WORKLOAD_NAMES, build_workload

#: Argparse-friendly spellings of the trace paths (the CLI accepts the
#: enum's string values; handlers pass them on and the API coerces).
TRACE_PATH_CHOICES = tuple(p.value for p in TracePath)


#: Global default for ``--scale`` when a subcommand has no better one.
DEFAULT_SCALE = 1 / 32


def _config(args) -> GPUConfig:
    scale = DEFAULT_SCALE if args.scale is None else args.scale
    return GPUConfig(num_chiplets=args.chiplets, scale=scale)


def _progress(message: str) -> None:
    print(message, file=sys.stderr)


def _emit(payload: str, out: str) -> None:
    """Write ``payload`` to stdout (``out`` is ``-``) or to a file."""
    if not payload.endswith("\n"):
        payload += "\n"
    if out in ("-", ""):
        sys.stdout.write(payload)
        return
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(payload)
    _progress(f"wrote {out}")


def _write_sweep_trace(tracer, out: str) -> None:
    """Export a sweep CLI's ``--trace-out`` tracer (format by extension)."""
    from repro.obs import write_trace

    fmt = write_trace(tracer, out)
    _progress(f"wrote {out} ({fmt}, {len(tracer.events)} events)")


def cmd_list(args) -> int:
    print("workloads (Table II):")
    for name in WORKLOAD_NAMES:
        print(f"  {name}")
    print("extra workloads:")
    for name in EXTRA_WORKLOADS:
        print(f"  {name}")
    print("protocols:")
    for name in protocol_names():
        print(f"  {name}")
    return 0


def cmd_run(args) -> int:
    from repro.api import sweep
    from repro.gpu.config import monolithic_equivalent

    config = _config(args)
    tracer = None
    if args.trace_out:
        from repro.obs import EventTracer
        tracer = EventTracer()
    # The monolithic comparator models a single-chiplet GPU of the same
    # aggregate capacity; give it its own config cell instead of crashing
    # on the multi-chiplet one.
    regular = tuple(p for p in args.protocols if p != "monolithic")
    results = {}
    reports = []
    if regular:
        res = sweep(workloads=(args.workload,), protocols=regular,
                    configs=(config,), scheduler=args.scheduler,
                    jobs=args.jobs, cache=not args.no_cache,
                    progress=_progress, tracer=tracer)
        reports.append(res.report)
        for protocol in regular:
            results[protocol] = res.get(args.workload, protocol)
    if "monolithic" in args.protocols:
        res = sweep(workloads=(args.workload,), protocols=("monolithic",),
                    configs=(monolithic_equivalent(config),),
                    scheduler=args.scheduler, jobs=args.jobs,
                    cache=not args.no_cache, progress=_progress,
                    tracer=tracer)
        reports.append(res.report)
        results["monolithic"] = res.get(args.workload, "monolithic")
    rows: List[List[object]] = []
    baseline_cycles = None
    for protocol in args.protocols:
        res = results[protocol]
        if baseline_cycles is None:
            baseline_cycles = res.wall_cycles
        acc = res.metrics.total_accesses()
        sync = res.metrics.total_sync()
        rows.append([
            protocol,
            res.wall_cycles,
            baseline_cycles / res.wall_cycles,
            acc.l2_miss_rate,
            res.metrics.total_traffic().total,
            sync.acquires_elided + sync.releases_elided,
            res.energy["total"] * 1e6,
        ])
    print(format_table(
        ["protocol", "cycles", f"speedup vs {args.protocols[0]}",
         "L2 miss rate", "flits", "syncs elided", "energy (uJ)"],
        rows,
        title=(f"{args.workload} on {config.num_chiplets} chiplets "
               f"(scale {config.scale:g})")))
    for report in reports:
        print(report.summary(), file=sys.stderr)
    if tracer is not None:
        _write_sweep_trace(tracer, args.trace_out)
    return 0


def cmd_trace(args) -> int:
    import json

    config = _config(args)
    protocol = args.protocol or (args.protocols[0] if args.protocols
                                 else "cpelide")
    workload = build_workload(args.workload, config)
    if args.format == "sync":
        trace = trace_sync_ops(workload, config, protocol)
        _emit(trace.render(limit=args.limit), args.out)
        return 0
    from repro.api import simulate
    from repro.obs import EventTracer
    from repro.obs.export import (
        chrome_trace,
        distributions_csv,
        events_jsonl,
        text_summary,
    )

    tracer = EventTracer()
    simulate(workload, protocol, config=config, scheduler=args.scheduler,
             trace_path=args.trace_path, tracer=tracer)
    if args.format == "chrome":
        payload = json.dumps(chrome_trace(tracer))
    elif args.format == "jsonl":
        payload = events_jsonl(tracer.events)
    elif args.format == "csv":
        payload = distributions_csv(tracer.metrics.aggregate())
    else:
        payload = text_summary(tracer, limit=args.limit)
    _emit(payload, args.out)
    return 0


def cmd_occupancy(args) -> int:
    tracer = None
    if args.trace_out:
        from repro.obs import EventTracer
        tracer = EventTracer()
    profiles = occupancy_experiment.run(
        workloads=args.workloads or None,
        scale=DEFAULT_SCALE if args.scale is None else args.scale,
        num_chiplets=args.chiplets, jobs=args.jobs,
        cache=not args.no_cache, progress=_progress, tracer=tracer)
    print(occupancy_experiment.report(profiles))
    if tracer is not None:
        _write_sweep_trace(tracer, args.trace_out)
    return 0


def _warn_environment(report, reference, label: str) -> None:
    """Warn when two bench reports were not timed on the same machine."""
    from repro import bench

    for diff in bench.compare_environments(report, reference):
        _progress(f"WARNING: {label}: {diff} — timings are not "
                  f"comparable across environments")


def _write_bench_report(report, path: str) -> None:
    """Write a bench report to ``path`` plus a repo-root copy.

    Perf-trajectory tooling scans root-level ``BENCH_*.json``, while the
    canonical reports live under ``benchmarks/perf/`` — emit both (the
    copy is skipped when ``path`` already is the root file). If ``path``
    already holds a report from a *different* environment, warn before
    overwriting: the trajectory across the two files mixes machines.
    """
    import json
    import os

    from repro import bench

    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                previous = json.load(fh)
        except (OSError, ValueError):
            previous = None
        if previous is not None:
            _warn_environment(report, previous,
                              f"overwriting {path} from a different "
                              f"environment")
    bench.write_report(report, path)
    _progress(f"wrote {path}")
    root_copy = os.path.basename(path)
    if os.path.abspath(root_copy) != os.path.abspath(path):
        bench.write_report(report, root_copy)
        _progress(f"wrote {root_copy}")


def _check_speedup(report, label: str, floor: float,
                   cell_floor: float) -> int:
    """Gate a bench report: the aggregate speedup must clear ``floor``
    and *every per-cell speedup* must clear ``cell_floor``.

    The per-cell gate is what catches a single workload regressing
    (e.g. one memoized cell falling behind the run path) while the
    aggregate still looks healthy.
    """
    rc = 0
    speedup = report["aggregate"]["speedup"]
    if speedup < floor:
        _progress(f"FAIL: {label} aggregate speedup {speedup:.2f}x is "
                  f"below the --min-speedup floor {floor:g}x")
        rc = 1
    for cell in report["cells"]:
        if cell["speedup"] < cell_floor:
            _progress(f"FAIL: {label} cell "
                      f"{cell['workload']}/{cell['protocol']} speedup "
                      f"{cell['speedup']:.2f}x is below the "
                      f"--min-cell-speedup floor {cell_floor:g}x")
            rc = 1
    return rc


def cmd_bench(args) -> int:
    from repro import bench

    if args.scale is not None:
        scale = args.scale
    else:
        scale = bench.QUICK_SCALE if args.quick else bench.FULL_SCALE
    repeats = args.repeats
    if repeats is None:
        repeats = 2 if args.quick else 3
    workloads = args.workloads or None
    rc = 0
    if args.sweep in ("trace", "both"):
        _progress(f"benchmarking line vs run trace paths at scale "
                  f"{scale:g} ({args.chiplets} chiplets, "
                  f"best of {repeats})")
        report = bench.run_bench(scale=scale, chiplets=args.chiplets,
                                 repeats=repeats, workloads=workloads,
                                 progress=_progress)
        _write_bench_report(report, args.out)
        print(bench.summarize(report))
        if args.check:
            rc |= _check_speedup(report, "line-vs-run", args.min_speedup,
                                 args.min_cell_speedup)
    if args.sweep in ("memo", "both"):
        _progress(f"benchmarking memo vs run trace paths at scale "
                  f"{scale:g} ({args.chiplets} chiplets, "
                  f"best of {repeats})")
        report = bench.run_memo_bench(scale=scale, chiplets=args.chiplets,
                                      repeats=max(2, repeats),
                                      workloads=workloads,
                                      progress=_progress)
        _write_bench_report(report, args.memo_out)
        print(bench.summarize_memo(report))
        if args.check:
            rc |= _check_speedup(report, "memo-vs-run", args.min_speedup,
                                 args.min_cell_speedup)
    if args.sweep == "obs":
        import json
        import os

        _progress(f"benchmarking disabled vs recording tracer at scale "
                  f"{scale:g} ({args.chiplets} chiplets, "
                  f"best of {repeats})")
        report = bench.run_obs_bench(scale=scale, chiplets=args.chiplets,
                                     repeats=repeats, workloads=workloads,
                                     progress=_progress)
        _write_bench_report(report, args.obs_out)
        print(bench.summarize_obs(report))
        if args.check:
            if not os.path.exists(args.out):
                _progress(f"obs overhead check skipped: no line-vs-run "
                          f"reference report at {args.out}")
            else:
                with open(args.out, encoding="utf-8") as fh:
                    reference = json.load(fh)
                _warn_environment(report, reference,
                                  f"obs reference {args.out}")
                ok, message = bench.check_obs_overhead(
                    report, reference, tolerance=args.max_overhead)
                _progress(("OK: " if ok else "FAIL: ") + message)
                rc |= 0 if ok else 1
    if args.sweep == "dist":
        # The dist sweep times orchestration, not simulation fidelity —
        # default to the quick scale so the four worker counts plus the
        # warm pass stay tractable.
        dist_scale = args.scale if args.scale is not None else (
            1 / 64 if args.quick else bench.QUICK_SCALE)
        worker_counts = (tuple(args.dist_workers) if args.dist_workers
                         else bench.DIST_WORKER_COUNTS)
        _progress(f"benchmarking distributed sweep scaling at scale "
                  f"{dist_scale:g} ({args.chiplets} chiplets, "
                  f"workers {list(worker_counts)})")
        report = bench.run_dist_bench(scale=dist_scale,
                                      chiplets=args.chiplets,
                                      worker_counts=worker_counts,
                                      workloads=workloads,
                                      progress=_progress)
        _write_bench_report(report, args.dist_out)
        print(bench.summarize_dist(report))
        if args.check:
            ok, message = bench.check_dist_scaling(
                report, min_efficiency=args.min_dist_efficiency)
            _progress(("OK: " if ok else "FAIL: ") + message)
            rc |= 0 if ok else 1
    return rc


def _dist_spec(args):
    """The sweep a ``dist`` invocation distributes."""
    from repro.engine import SweepSpec

    scale = DEFAULT_SCALE if args.scale is None else args.scale
    return SweepSpec.grid(workloads=args.workloads or None,
                          protocols=tuple(args.protocols),
                          chiplet_counts=(args.chiplets,), scale=scale)


def cmd_dist(args) -> int:
    from repro.engine import DistSweepRunner, dist

    tracer = None
    if args.trace_out:
        from repro.obs import EventTracer
        tracer = EventTracer()
    if args.mode != "run" and not args.work_dir:
        _progress(f"dist --mode {args.mode} requires --work-dir")
        return 2
    report = None
    if args.mode == "scatter":
        units = dist.scatter(_dist_spec(args), args.work_dir,
                             workers=args.workers,
                             batch_size=args.batch_size, tracer=tracer)
        cells = sum(u.cells for u in units)
        print(f"scattered {cells} cells into {len(units)} units "
              f"under {args.work_dir}")
    elif args.mode == "work":
        executed = dist.work(args.work_dir, max_units=args.max_units,
                             progress=_progress, tracer=tracer)
        print(f"executed {executed} units from {args.work_dir}")
    elif args.mode == "gather":
        result = dist.gather(args.work_dir)
        report = result.report
        print(report.summary())
    else:
        runner = DistSweepRunner(workers=args.workers,
                                 cache=args.cache_dir,
                                 batch_size=args.batch_size,
                                 progress=_progress, tracer=tracer)
        result = runner.run(_dist_spec(args))
        report = result.report
        print(report.summary())
    if tracer is not None:
        _write_sweep_trace(tracer, args.trace_out)
    if args.expect_cached:
        if report is None:
            _progress("--expect-cached only applies to --mode run/gather")
            return 2
        if report.executed:
            _progress(f"FAIL: expected every cell cached, but "
                      f"{report.executed} of {report.total_jobs} were "
                      f"recomputed")
            return 1
        _progress(f"OK: all {report.total_jobs} cells served from the "
                  f"shared cache (0 recomputed)")
    return 0


def cmd_explore(args) -> int:
    from repro.engine import SharedResultCache
    from repro.experiments import explore as explore_experiment

    if args.rungs:
        rungs = tuple(args.rungs)
    elif args.quick:
        rungs = explore_experiment.QUICK_RUNGS
    else:
        rungs = explore_experiment.DEFAULT_RUNGS
    chiplet_counts = (tuple(args.chiplet_counts) if args.chiplet_counts
                      else ((2, 4) if args.quick
                            else explore_experiment.DEFAULT_CHIPLET_COUNTS))
    table_windows = (tuple(args.table_windows) if args.table_windows
                     else explore_experiment.DEFAULT_TABLE_WINDOWS)
    l2_mb = (tuple(args.l2_mb) if args.l2_mb
             else explore_experiment.DEFAULT_L2_MB)
    if args.no_cache:
        cache = False
    elif args.cache_dir:
        cache = SharedResultCache(root=args.cache_dir)
    else:
        cache = True
    result = explore_experiment.explore(
        chiplet_counts=chiplet_counts, table_windows=table_windows,
        l2_mb=l2_mb, workloads=tuple(args.workloads) if args.workloads
        else explore_experiment.DEFAULT_SEED_WORKLOADS,
        rungs=rungs, workers=args.workers, cache=cache,
        progress=_progress, protocol=args.protocol,
        leases=tuple(args.lease_kernels) if args.lease_kernels else None)
    print(result.render())
    if args.out:
        import json

        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
            fh.write("\n")
        _progress(f"wrote {args.out}")
    return 0


def cmd_serve(args) -> int:
    from repro.api import serve

    cache = args.cache_dir  # None -> the shared cache's default root
    try:
        serve(host=args.host, port=args.port, cache=cache,
              max_inflight=args.max_inflight,
              max_queue_depth=args.max_queue_depth,
              client_quota=args.client_quota,
              use_uvicorn=args.uvicorn)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_check(args) -> int:
    import dataclasses

    from repro.check.oracle import (
        DEFAULT_PROTOCOLS,
        DEFAULT_TRACE_PATHS,
        run_oracle,
    )

    config = _config(args)
    if args.sanitize:
        config = dataclasses.replace(config, check_invariants=True)
    workloads = args.workloads or None
    if args.quick and workloads is None:
        workloads = list(QUICK_CHECK_WORKLOADS)
    report = run_oracle(workloads=workloads, protocols=args.protocols,
                        trace_paths=args.trace_paths, config=config,
                        scheduler=args.scheduler, progress=_progress)
    matrix = (f"{report.cells} cells x {len(args.trace_paths)} trace paths "
              f"({report.runs} simulations)")
    if report.ok:
        print(f"oracle OK: {matrix}, all results identical"
              + (", sanitizer clean" if args.sanitize else ""))
        return 0
    print(f"oracle FAILED: {len(report.divergences)} divergence(s) "
          f"across {matrix}")
    for divergence in report.divergences:
        print()
        print(divergence.describe())
    return 1


#: ``repro check --quick`` workload subset: one representative per
#: access-pattern family (streaming, stencil, iterative reuse, indirect,
#: multi-kernel pipeline, low-reuse), kept small enough for CI.
QUICK_CHECK_WORKLOADS = ("square", "babelstream", "hotspot", "bfs",
                         "backprop", "nw")


def main(argv=None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CPElide reproduction: simulate chiplet-GPU workloads.")
    parser.add_argument("--scale", type=float, default=None,
                        help="simulation scale (default 1/32; bench "
                             "defaults to 1/4, or 1/16 with --quick)")
    parser.add_argument("--chiplets", type=int, default=4,
                        help="chiplet count (default 4)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, 0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result cache")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and protocols")

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload", choices=WORKLOAD_NAMES + EXTRA_WORKLOADS)
    run_p.add_argument("--protocols", nargs="+", default=["baseline", "hmg",
                                                          "cpelide"],
                       choices=protocol_names())
    run_p.add_argument("--scheduler", default="static",
                       choices=("static", "locality"))
    run_p.add_argument("--trace-out", default=None,
                       help="attach an observability tracer and export "
                            "the event trace to this file (.json -> "
                            "Chrome/Perfetto, .csv -> distributions, "
                            "else JSONL)")

    trace_p = sub.add_parser(
        "trace", help="run one simulation with the event tracer and "
                      "export the trace")
    trace_p.add_argument("workload", choices=WORKLOAD_NAMES + EXTRA_WORKLOADS)
    trace_p.add_argument("protocol", nargs="?", default=None,
                         choices=protocol_names(),
                         help="protocol to trace (default cpelide)")
    trace_p.add_argument("--protocols", nargs="+", default=None,
                         choices=protocol_names(),
                         help="legacy spelling of the protocol argument "
                              "(first entry is used)")
    trace_p.add_argument("--format", default="text",
                         choices=("text", "chrome", "jsonl", "csv", "sync"),
                         help="export format: human-readable summary "
                              "with the sync trace (default), Chrome "
                              "trace_event JSON for Perfetto, JSON "
                              "lines, metric-distribution CSV, or the "
                              "legacy analytic sync-op trace")
    trace_p.add_argument("--out", default="-",
                         help="output file ('-' = stdout, the default)")
    trace_p.add_argument("--limit", type=int, default=40,
                         help="sync-trace entries to show in "
                              "text/sync formats (default 40)")
    trace_p.add_argument("--trace-path", default=None,
                         choices=TRACE_PATH_CHOICES,
                         help="trace representation to simulate with "
                              "(default: REPRO_TRACE_PATH or 'run')")
    trace_p.add_argument("--scheduler", default="static",
                         choices=("static", "locality"))

    occ_p = sub.add_parser("occupancy", help="coherence-table occupancy")
    occ_p.add_argument("workloads", nargs="*",
                       help="workload subset (default: all 24)")
    occ_p.add_argument("--trace-out", default=None,
                       help="attach an observability tracer and export "
                            "the event trace to this file")

    bench_p = sub.add_parser(
        "bench", help="time the trace paths against each other")
    bench_p.add_argument("--sweep", default="both",
                         choices=("trace", "memo", "both", "obs", "dist"),
                         help="which comparison to run: line-vs-run "
                              "('trace'), memo-vs-run ('memo'), both "
                              "(default), disabled-vs-recording tracer "
                              "overhead ('obs'), or distributed sweep "
                              "scaling over the shared result cache "
                              "('dist')")
    bench_p.add_argument("--workloads", nargs="+", default=None,
                         choices=WORKLOAD_NAMES + EXTRA_WORKLOADS,
                         help="workload subset (default: each sweep's "
                              "canonical list)")
    bench_p.add_argument("--quick", action="store_true",
                         help="smaller scale and fewer repeats (CI smoke)")
    bench_p.add_argument("--check", action="store_true",
                         help="exit nonzero if a sweep's aggregate "
                              "speedup is below --min-speedup or any "
                              "per-cell speedup is below "
                              "--min-cell-speedup")
    bench_p.add_argument("--min-speedup", type=float, default=1.0,
                         help="aggregate speedup floor for --check "
                              "(default 1.0: fail only if the fast path "
                              "is slower)")
    bench_p.add_argument("--min-cell-speedup", type=float, default=0.95,
                         help="per-cell speedup floor for --check "
                              "(default 0.95: no single workload/"
                              "protocol cell may regress below 0.95x)")
    bench_p.add_argument("--repeats", type=int, default=None,
                         help="timing repetitions per cell, best kept "
                              "(default 3, or 2 with --quick; the memo "
                              "sweep needs >= 2 to measure warm replays)")
    bench_p.add_argument("--out", default="benchmarks/perf/BENCH_trace.json",
                         help="line-vs-run report path "
                              "(default benchmarks/perf/BENCH_trace.json)")
    bench_p.add_argument("--memo-out",
                         default="benchmarks/perf/BENCH_memo.json",
                         help="memo-vs-run report path "
                              "(default benchmarks/perf/BENCH_memo.json)")
    bench_p.add_argument("--obs-out",
                         default="benchmarks/perf/BENCH_obs.json",
                         help="tracing-overhead report path "
                              "(default benchmarks/perf/BENCH_obs.json)")
    bench_p.add_argument("--max-overhead", type=float, default=0.02,
                         help="with --sweep obs --check: allowed "
                              "disabled-tracer overhead vs the "
                              "line-vs-run report at --out "
                              "(default 0.02 = 2%%)")
    bench_p.add_argument("--dist-out",
                         default="benchmarks/perf/BENCH_dist.json",
                         help="distributed-scaling report path "
                              "(default benchmarks/perf/BENCH_dist.json)")
    bench_p.add_argument("--dist-workers", nargs="+", type=int,
                         default=None,
                         help="worker counts the dist sweep times "
                              "(default 1 2 4 8)")
    bench_p.add_argument("--min-dist-efficiency", type=float, default=0.5,
                         help="with --sweep dist --check: scaling-"
                              "efficiency floor per worker count — "
                              "speedup over min(workers, cpu_count) "
                              "(default 0.5)")

    dist_p = sub.add_parser(
        "dist", help="distribute a sweep: sharded workers over a shared "
                     "result cache with in-flight dedupe")
    dist_p.add_argument("--mode", default="run",
                        choices=("run", "scatter", "work", "gather"),
                        help="'run' executes locally with --workers "
                             "processes (default); 'scatter' writes the "
                             "sweep into --work-dir as work units, "
                             "'work' executes units from any host that "
                             "sees --work-dir, 'gather' reassembles the "
                             "finished sweep")
    dist_p.add_argument("--workloads", nargs="+", default=None,
                        choices=WORKLOAD_NAMES + EXTRA_WORKLOADS,
                        help="workload subset (default: all 24)")
    dist_p.add_argument("--protocols", nargs="+",
                        default=["baseline", "cpelide"],
                        choices=protocol_names())
    dist_p.add_argument("--workers", type=int, default=2,
                        help="worker processes for --mode run, or the "
                             "expected worker count scatter sizes units "
                             "for (default 2)")
    dist_p.add_argument("--work-dir", default=None,
                        help="filesystem work directory shared by "
                             "scatter/work/gather (any host that mounts "
                             "it can run 'work')")
    dist_p.add_argument("--cache-dir", default=None,
                        help="shared result cache root for --mode run "
                             "(default: REPRO_CACHE_DIR or "
                             "~/.cache/repro-cpelide)")
    dist_p.add_argument("--batch-size", type=int, default=None,
                        help="cells per work unit (default: sized for "
                             "--workers)")
    dist_p.add_argument("--max-units", type=int, default=None,
                        help="with --mode work: stop after this many "
                             "units (default: drain the directory)")
    dist_p.add_argument("--expect-cached", action="store_true",
                        help="exit nonzero unless every cell was served "
                             "from the shared cache (0 recomputed) — "
                             "the CI smoke gate for cache reuse")
    dist_p.add_argument("--trace-out", default=None,
                        help="attach an observability tracer and export "
                             "the event trace (shard timeline) to this "
                             "file")

    explore_p = sub.add_parser(
        "explore", help="Pareto search over chiplet count x table "
                        "capacity x L2 size (successive halving)")
    explore_p.add_argument("--chiplet-counts", nargs="+", type=int,
                           default=None,
                           help="candidate chiplet counts "
                                "(default 2 4 6 8; --quick: 2 4)")
    explore_p.add_argument("--table-windows", nargs="+", type=int,
                           default=None,
                           help="candidate per-kernel table windows "
                                "(entries = 8x window; default 4 8 16)")
    explore_p.add_argument("--l2-mb", nargs="+", type=int, default=None,
                           help="candidate per-chiplet L2 sizes in MB "
                                "(default 4 8 16)")
    explore_p.add_argument("--workloads", nargs="+", default=None,
                           choices=WORKLOAD_NAMES + EXTRA_WORKLOADS,
                           help="seed workloads scoring each design "
                                "point (default: hotspot backprop bfs "
                                "square)")
    explore_p.add_argument("--rungs", nargs="+", type=float, default=None,
                           help="fidelity ladder: simulation scale per "
                                "successive-halving rung (default "
                                "1/64 1/32 1/16)")
    explore_p.add_argument("--protocol", default="cpelide",
                           choices=protocol_names(),
                           help="measured protocol, scored against "
                                "baseline at every design point "
                                "(default cpelide)")
    explore_p.add_argument("--lease-kernels", nargs="+", type=int,
                           default=None,
                           help="add the lease length (kernel epochs) as "
                                "a search axis — meaningful with the "
                                "timestamp protocols (e.g. 2 4 8)")
    explore_p.add_argument("--workers", type=int, default=2,
                           help="distributed workers per rung (default 2)")
    explore_p.add_argument("--cache-dir", default=None,
                           help="shared result cache root (default: "
                                "REPRO_CACHE_DIR or ~/.cache/"
                                "repro-cpelide)")
    explore_p.add_argument("--quick", action="store_true",
                           help="two rungs over a smaller design space "
                                "(CI smoke)")
    explore_p.add_argument("--out", default=None,
                           help="also write the full exploration "
                                "history as JSON to this file")

    serve_p = sub.add_parser(
        "serve", help="serve the simulation job API over HTTP: async "
                      "submissions, SSE progress streams, shared-cache "
                      "dedupe across clients")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="bind port (default 8642; 0 = ephemeral)")
    serve_p.add_argument("--cache-dir", default=None,
                         help="shared result cache root (default: "
                              "REPRO_CACHE_DIR or ~/.cache/repro-cpelide)")
    serve_p.add_argument("--max-inflight", type=int, default=2,
                         help="jobs executing concurrently (default 2)")
    serve_p.add_argument("--max-queue-depth", type=int, default=64,
                         help="queued jobs before submissions shed with "
                              "429 + Retry-After (default 64)")
    serve_p.add_argument("--client-quota", type=int, default=8,
                         help="active (queued+running) jobs one client "
                              "may hold (default 8)")
    serve_p.add_argument("--uvicorn", action="store_true", default=None,
                         help="require uvicorn's ASGI server (default: "
                              "auto-detect, stdlib fallback)")

    check_p = sub.add_parser(
        "check", help="differential oracle: cross-check trace paths x "
                      "protocols over the workload suite")
    check_p.add_argument("--workloads", nargs="+", default=None,
                         choices=WORKLOAD_NAMES + EXTRA_WORKLOADS,
                         help="workload subset (default: all 24)")
    check_p.add_argument("--protocols", nargs="+",
                         default=["baseline", "hmg", "cpelide",
                                  "timestamp", "cpelide-ts"],
                         choices=protocol_names())
    check_p.add_argument("--trace-paths", nargs="+",
                         default=list(TRACE_PATH_CHOICES),
                         choices=TRACE_PATH_CHOICES,
                         help="trace paths to compare; the first is the "
                              "reference (default: line run memo)")
    check_p.add_argument("--scheduler", default="static",
                         choices=("static", "locality"))
    check_p.add_argument("--sanitize", action="store_true",
                         help="also run the coherence invariant sanitizer "
                              "inside every simulation")
    check_p.add_argument("--quick", action="store_true",
                         help="reduced workload subset (CI smoke)")

    args = parser.parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "trace": cmd_trace,
                "occupancy": cmd_occupancy, "bench": cmd_bench,
                "dist": cmd_dist, "explore": cmd_explore,
                "serve": cmd_serve, "check": cmd_check}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
