"""Throughput benchmark: batched run-based trace path vs per-line path.

The run-based trace path (``trace_path="run"``) replaces the simulator's
per-line protocol walk with interval (``LineRun``) traces served by bulk
cache/protocol operations. It is required to be *bit-identical* to the
per-line reference — ``tests/test_batched_equivalence.py`` is the
referee — so its only observable difference is wall-clock time. This
module measures that difference and emits a machine-readable report
(``benchmarks/perf/BENCH_trace.json``).

Sweep composition: the **partitioned sweep** — every Table II workload
whose kernels access *only* ``PatternKind.PARTITIONED`` data structures
(the regular GPGPU case the batched path targets) with moderate-to-high
inter-kernel reuse, plus the multi-stream ``streams`` benchmark, under
the paper's protocol (``cpelide``) and its elision upper bound
(``nosync``), on 4 chiplets, single process (``jobs=1``).

Methodology: each (workload, protocol) cell simulates both trace paths
``repeats`` times in interleaved order (to decorrelate machine-load
drift) and keeps the fastest wall time of each. Every repetition also
re-asserts bit-identity of ``SimulationResult.to_dict()`` between the
two paths, so a benchmark run doubles as an end-to-end equivalence
check.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, OracleDivergence
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.gpu.trace_path import TracePath
from repro.workloads.suite import build_workload

#: Table II workloads whose every kernel argument is PARTITIONED and that
#: have moderate-to-high inter-kernel reuse, plus the multi-stream
#: ``streams`` benchmark (also pure-partitioned).
PARTITIONED_SWEEP: List[str] = [
    "babelstream", "backprop", "gaussian", "lud", "square", "streams",
]

#: The paper's protocol and its sync-elision upper bound.
BENCH_PROTOCOLS: List[str] = ["cpelide", "nosync"]

#: Iterative Table II workloads (frontier loops, timestep recurrences,
#: stencil sweeps) — the kernels the memo trace path targets: each
#: re-dispatches the same kernels over stable or cyclic state, so later
#: repetitions replay from the memo store instead of re-walking traces.
ITERATIVE_SWEEP: List[str] = [
    "bfs", "sssp", "rnn-gru-small", "hotspot", "srad", "pathfinder",
]

#: Default simulation scales: the full bench uses larger caches (longer
#: runs amortize per-set framing, matching the regime the paper targets);
#: ``--quick`` trades fidelity for CI latency.
FULL_SCALE = 1 / 4
QUICK_SCALE = 1 / 16

#: Worker counts the distributed scaling bench sweeps.
DIST_WORKER_COUNTS = (1, 2, 4, 8)


class EquivalenceError(OracleDivergence):
    """The two trace paths produced different simulation results."""


def bench_environment() -> Dict:
    """Environment metadata stamped into every ``BENCH_*.json``.

    Perf numbers are only comparable within one environment; the stamp
    (python/numpy versions, CPU count, platform, and a short hostname
    hash — the name itself stays private) lets trajectory tooling and
    ``--check`` tell a regression from a machine change.
    """
    import hashlib
    import os
    import socket

    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a test dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "hostname_hash": hashlib.blake2b(
            socket.gethostname().encode(), digest_size=4).hexdigest(),
    }


def compare_environments(report: Dict, reference: Dict) -> List[str]:
    """Differences between two bench reports' environment stamps.

    Returns human-readable mismatch descriptions (empty = comparable).
    A reference predating the stamps compares as one mismatch, so old
    trajectories warn instead of silently mixing machines.
    """
    env = report.get("meta", {}).get("environment")
    ref = reference.get("meta", {}).get("environment")
    if not env:
        return []
    if not ref:
        return ["reference report carries no environment metadata "
                "(predates the stamp)"]
    diffs = []
    for key in ("python", "numpy", "cpu_count", "platform",
                "hostname_hash"):
        if env.get(key) != ref.get(key):
            diffs.append(f"{key}: {ref.get(key)!r} -> {env.get(key)!r}")
    return diffs


def _time_cell(config: GPUConfig, workload_name: str, protocol: str,
               trace_path: TracePath) -> Tuple[float, int, dict]:
    """Simulate one cell; return (wall seconds, trace lines, result dict)."""
    sim = Simulator(config, protocol=protocol, trace_path=trace_path)
    workload = build_workload(workload_name, config)
    t0 = time.perf_counter()
    result = sim.run(workload)
    dt = time.perf_counter() - t0
    return dt, sim.last_trace_lines, result.to_dict()


def run_bench(scale: float = FULL_SCALE, chiplets: int = 4,
              repeats: int = 3,
              workloads: Optional[Sequence[str]] = None,
              protocols: Optional[Sequence[str]] = None,
              progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the line-vs-run sweep and return the report dictionary."""
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    workloads = list(workloads) if workloads else list(PARTITIONED_SWEEP)
    protocols = list(protocols) if protocols else list(BENCH_PROTOCOLS)
    config = GPUConfig(num_chiplets=chiplets, scale=scale)
    cells: List[Dict] = []
    agg_line = agg_run = 0.0
    agg_lines = 0
    for protocol in protocols:
        for workload in workloads:
            line_best = run_best = float("inf")
            lines = 0
            for rep in range(repeats):
                dt_l, n_l, d_l = _time_cell(config, workload, protocol,
                                            TracePath.LINE)
                dt_r, n_r, d_r = _time_cell(config, workload, protocol,
                                            TracePath.RUN)
                if d_l != d_r or n_l != n_r:
                    raise EquivalenceError(
                        f"trace paths diverged: {workload}/{protocol} "
                        f"(scale {scale:g}, rep {rep})")
                line_best = min(line_best, dt_l)
                run_best = min(run_best, dt_r)
                lines = n_l
            cells.append({
                "workload": workload,
                "protocol": protocol,
                "lines": lines,
                "line_seconds": round(line_best, 6),
                "run_seconds": round(run_best, 6),
                "speedup": round(line_best / run_best, 3),
                "line_lines_per_sec": round(lines / line_best, 1),
                "run_lines_per_sec": round(lines / run_best, 1),
                "identical": True,
            })
            agg_line += line_best
            agg_run += run_best
            agg_lines += lines
            if progress is not None:
                progress(f"  {workload}/{protocol}: line {line_best:.3f}s, "
                         f"run {run_best:.3f}s "
                         f"({line_best / run_best:.1f}x)")
    report = {
        "benchmark": "batched run-based trace path vs per-line trace path",
        "sweep": "partitioned" if workloads == PARTITIONED_SWEEP else "custom",
        "meta": {
            "scale": scale,
            "chiplets": chiplets,
            "repeats": repeats,
            "jobs": 1,
            "workloads": workloads,
            "protocols": protocols,
            "python": platform.python_version(),
            "environment": bench_environment(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "cells": cells,
        "aggregate": {
            "lines": agg_lines,
            "line_seconds": round(agg_line, 6),
            "run_seconds": round(agg_run, 6),
            "speedup": round(agg_line / agg_run, 3),
            "line_lines_per_sec": round(agg_lines / agg_line, 1),
            "run_lines_per_sec": round(agg_lines / agg_run, 1),
        },
    }
    return report


def _time_cell_memo(config: GPUConfig, workload_name: str,
                    protocol: str) -> Tuple[float, int, dict,
                                            Tuple[int, int, int]]:
    """Simulate one cell on the memo path; also return its
    (hits, misses, bypasses) counters."""
    sim = Simulator(config, protocol=protocol, trace_path=TracePath.MEMO)
    workload = build_workload(workload_name, config)
    t0 = time.perf_counter()
    result = sim.run(workload)
    dt = time.perf_counter() - t0
    return (dt, sim.last_trace_lines, result.to_dict(),
            (result.memo_hits, result.memo_misses, result.memo_bypasses))


def run_memo_bench(scale: float = FULL_SCALE, chiplets: int = 4,
                   repeats: int = 3,
                   workloads: Optional[Sequence[str]] = None,
                   protocols: Optional[Sequence[str]] = None,
                   progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the memo-vs-run sweep and return the report dictionary.

    Same methodology as :func:`run_bench`, with the memo store cleared
    up front so the report is reproducible: each cell runs one untimed
    recording repetition that populates the store (miss-run), then
    ``repeats`` timed repetitions that replay from it (hit-runs) —
    exactly the bench/engine repeat pattern the memo path exists for.
    Timing the recording rep would leave the memo side one warm sample
    short of the run side under best-of-``repeats``, skewing
    bypass-heavy cells where warm memo and run are near-equal. Every
    repetition, including the untimed one, re-asserts bit-identity
    against the run path.
    """
    from repro.gpu.memo import clear_memo_stores

    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    workloads = list(workloads) if workloads else list(ITERATIVE_SWEEP)
    protocols = list(protocols) if protocols else list(BENCH_PROTOCOLS)
    config = GPUConfig(num_chiplets=chiplets, scale=scale)
    clear_memo_stores()
    # Intern the seeded traces once up front so both paths' timings
    # measure simulation, not RNG sampling.
    from repro.workloads.suite import prewarm_traces
    prewarm_traces(workloads, config)
    cells: List[Dict] = []
    agg_run = agg_memo = 0.0
    agg_lines = 0
    for protocol in protocols:
        for workload in workloads:
            run_best = memo_best = float("inf")
            lines = 0
            counters = (0, 0, 0)
            # Untimed recording rep: populates the memo store so every
            # timed rep below measures the warm (replay) path.
            _, n_w, d_w, _ = _time_cell_memo(config, workload, protocol)
            for rep in range(repeats):
                dt_r, n_r, d_r = _time_cell(config, workload, protocol,
                                            TracePath.RUN)
                dt_m, n_m, d_m, counters = _time_cell_memo(
                    config, workload, protocol)
                if rep == 0 and (d_w != d_r or n_w != n_r):
                    raise EquivalenceError(
                        f"memo recording rep diverged from run path: "
                        f"{workload}/{protocol} (scale {scale:g})")
                if d_r != d_m or n_r != n_m:
                    raise EquivalenceError(
                        f"memo path diverged from run path: "
                        f"{workload}/{protocol} (scale {scale:g}, "
                        f"rep {rep})")
                run_best = min(run_best, dt_r)
                memo_best = min(memo_best, dt_m)
                lines = n_r
            hits, misses, bypasses = counters
            cells.append({
                "workload": workload,
                "protocol": protocol,
                "lines": lines,
                "run_seconds": round(run_best, 6),
                "memo_seconds": round(memo_best, 6),
                "speedup": round(run_best / memo_best, 3),
                "memo_hits": hits,
                "memo_misses": misses,
                "memo_bypasses": bypasses,
                "identical": True,
            })
            agg_run += run_best
            agg_memo += memo_best
            agg_lines += lines
            if progress is not None:
                progress(f"  {workload}/{protocol}: run {run_best:.3f}s, "
                         f"memo {memo_best:.3f}s "
                         f"({run_best / memo_best:.1f}x; "
                         f"{hits}h/{misses}m/{bypasses}b)")
    report = {
        "benchmark": "kernel-outcome memoization vs batched run path",
        "sweep": "iterative" if workloads == ITERATIVE_SWEEP else "custom",
        "meta": {
            "scale": scale,
            "chiplets": chiplets,
            "repeats": repeats,
            "jobs": 1,
            "workloads": workloads,
            "protocols": protocols,
            "python": platform.python_version(),
            "environment": bench_environment(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "cells": cells,
        "aggregate": {
            "lines": agg_lines,
            "run_seconds": round(agg_run, 6),
            "memo_seconds": round(agg_memo, 6),
            "speedup": round(agg_run / agg_memo, 3),
            "run_lines_per_sec": round(agg_lines / agg_run, 1),
            "memo_lines_per_sec": round(agg_lines / agg_memo, 1),
        },
    }
    return report


def _time_cell_traced(config: GPUConfig, workload_name: str,
                      protocol: str) -> Tuple[float, int, dict, int]:
    """Simulate one cell with a recording :class:`EventTracer` attached;
    also return the number of events captured."""
    from repro.obs import EventTracer

    tracer = EventTracer()
    sim = Simulator(config, protocol=protocol, trace_path=TracePath.RUN,
                    tracer=tracer)
    workload = build_workload(workload_name, config)
    t0 = time.perf_counter()
    result = sim.run(workload)
    dt = time.perf_counter() - t0
    return dt, sim.last_trace_lines, result.to_dict(), len(tracer.events)


def run_obs_bench(scale: float = FULL_SCALE, chiplets: int = 4,
                  repeats: int = 3,
                  workloads: Optional[Sequence[str]] = None,
                  protocols: Optional[Sequence[str]] = None,
                  progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the tracing-overhead sweep and return the report dictionary.

    Two variants per cell, interleaved like :func:`run_bench`: the
    default *disabled* tracer (``NULL_TRACER`` — the production
    configuration the <2% overhead budget applies to, timed as
    ``null_seconds``) and a recording :class:`~repro.obs.EventTracer`
    (``traced_seconds``). Every repetition asserts the traced run's
    serialized result is bit-identical to the untraced one, so the bench
    doubles as the tracer-purity differential check.

    The aggregate also carries ``run_seconds`` (an alias of the
    disabled-tracer total) so :func:`check_obs_overhead` can compare it
    against a ``BENCH_trace.json`` report timed on the same machine.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    workloads = list(workloads) if workloads else list(PARTITIONED_SWEEP)
    protocols = list(protocols) if protocols else list(BENCH_PROTOCOLS)
    config = GPUConfig(num_chiplets=chiplets, scale=scale)
    cells: List[Dict] = []
    agg_null = agg_traced = 0.0
    agg_lines = agg_events = 0
    for protocol in protocols:
        for workload in workloads:
            null_best = traced_best = float("inf")
            lines = events = 0
            for rep in range(repeats):
                dt_n, n_n, d_n = _time_cell(config, workload, protocol,
                                            TracePath.RUN)
                dt_t, n_t, d_t, events = _time_cell_traced(
                    config, workload, protocol)
                if d_n != d_t or n_n != n_t:
                    raise EquivalenceError(
                        f"tracer perturbed the simulation: "
                        f"{workload}/{protocol} (scale {scale:g}, "
                        f"rep {rep})")
                null_best = min(null_best, dt_n)
                traced_best = min(traced_best, dt_t)
                lines = n_n
            cells.append({
                "workload": workload,
                "protocol": protocol,
                "lines": lines,
                "events": events,
                "null_seconds": round(null_best, 6),
                "traced_seconds": round(traced_best, 6),
                "traced_overhead": round(traced_best / null_best - 1.0, 4),
                "identical": True,
            })
            agg_null += null_best
            agg_traced += traced_best
            agg_lines += lines
            agg_events += events
            if progress is not None:
                progress(f"  {workload}/{protocol}: null {null_best:.3f}s, "
                         f"traced {traced_best:.3f}s "
                         f"({traced_best / null_best - 1.0:+.1%}, "
                         f"{events} events)")
    report = {
        "benchmark": "tracing overhead: disabled (null) vs recording tracer",
        "sweep": "partitioned" if workloads == PARTITIONED_SWEEP else "custom",
        "meta": {
            "scale": scale,
            "chiplets": chiplets,
            "repeats": repeats,
            "jobs": 1,
            "workloads": workloads,
            "protocols": protocols,
            "python": platform.python_version(),
            "environment": bench_environment(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "cells": cells,
        "aggregate": {
            "lines": agg_lines,
            "events": agg_events,
            "null_seconds": round(agg_null, 6),
            "run_seconds": round(agg_null, 6),
            "traced_seconds": round(agg_traced, 6),
            "traced_overhead": round(agg_traced / agg_null - 1.0, 4),
        },
    }
    return report


def check_obs_overhead(report: Dict, reference: Dict,
                       tolerance: float = 0.02) -> Tuple[bool, str]:
    """Compare the obs bench's disabled-tracer aggregate against a
    line-vs-run bench report's run-path aggregate.

    Returns ``(ok, message)``. The check only means something when both
    sweeps timed the same simulations on the same machine, so a
    reference with different scale/chiplets/workloads/protocols passes
    vacuously with an explanatory message instead of failing.
    """
    ref_meta, meta = reference.get("meta", {}), report["meta"]
    for key in ("scale", "chiplets", "workloads", "protocols"):
        if ref_meta.get(key) != meta[key]:
            return True, (f"obs overhead check skipped: reference {key} "
                          f"{ref_meta.get(key)!r} does not match "
                          f"{meta[key]!r}")
    ref_seconds = reference["aggregate"]["run_seconds"]
    null_seconds = report["aggregate"]["null_seconds"]
    overhead = null_seconds / ref_seconds - 1.0
    message = (f"disabled-tracer aggregate {null_seconds:.3f}s vs "
               f"reference run-path {ref_seconds:.3f}s: {overhead:+.2%} "
               f"(budget {tolerance:+.0%})")
    return overhead <= tolerance, message


def summarize_obs(report: Dict) -> str:
    """Human-readable summary of a tracing-overhead bench report."""
    rows = []
    for cell in report["cells"]:
        rows.append(f"  {cell['workload']:<14s} {cell['protocol']:<8s} "
                    f"null {cell['null_seconds']:7.3f}s  "
                    f"traced {cell['traced_seconds']:7.3f}s  "
                    f"{cell['traced_overhead']:+7.1%}  "
                    f"({cell['events']} events)")
    agg = report["aggregate"]
    meta = report["meta"]
    rows.append(
        f"aggregate (scale {meta['scale']:g}, {meta['chiplets']} chiplets, "
        f"best of {meta['repeats']}): "
        f"null {agg['null_seconds']:.2f}s, "
        f"traced {agg['traced_seconds']:.2f}s "
        f"-> {agg['traced_overhead']:+.1%} recording overhead "
        f"({agg['events']:,} events)")
    return "\n".join(rows)


def summarize_memo(report: Dict) -> str:
    """Human-readable summary of a memo bench report."""
    rows = []
    for cell in report["cells"]:
        rows.append(f"  {cell['workload']:<14s} {cell['protocol']:<8s} "
                    f"run {cell['run_seconds']:7.3f}s  "
                    f"memo {cell['memo_seconds']:7.3f}s  "
                    f"{cell['speedup']:5.1f}x  "
                    f"({cell['memo_hits']}h/{cell['memo_misses']}m/"
                    f"{cell['memo_bypasses']}b)")
    agg = report["aggregate"]
    meta = report["meta"]
    rows.append(
        f"aggregate (scale {meta['scale']:g}, {meta['chiplets']} chiplets, "
        f"best of {meta['repeats']}): "
        f"run {agg['run_seconds']:.2f}s, memo {agg['memo_seconds']:.2f}s "
        f"-> {agg['speedup']:.2f}x "
        f"({agg['memo_lines_per_sec']:,.0f} lines/sec memoized)")
    return "\n".join(rows)


def write_report(report: Dict, path: str) -> None:
    """Write ``report`` as pretty-printed JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def summarize(report: Dict) -> str:
    """Human-readable summary of a bench report."""
    rows = []
    for cell in report["cells"]:
        rows.append(f"  {cell['workload']:<12s} {cell['protocol']:<8s} "
                    f"line {cell['line_seconds']:7.3f}s  "
                    f"run {cell['run_seconds']:7.3f}s  "
                    f"{cell['speedup']:5.1f}x")
    agg = report["aggregate"]
    meta = report["meta"]
    rows.append(
        f"aggregate (scale {meta['scale']:g}, {meta['chiplets']} chiplets, "
        f"best of {meta['repeats']}): "
        f"line {agg['line_seconds']:.2f}s, run {agg['run_seconds']:.2f}s "
        f"-> {agg['speedup']:.2f}x "
        f"({agg['run_lines_per_sec']:,.0f} lines/sec batched)")
    return "\n".join(rows)


def run_dist_bench(scale: float = QUICK_SCALE, chiplets: int = 4,
                   worker_counts: Sequence[int] = DIST_WORKER_COUNTS,
                   workloads: Optional[Sequence[str]] = None,
                   progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the distributed scaling sweep and return the report dictionary.

    The workload is the Pareto exploration *seed sweep* (see
    :func:`repro.experiments.explore.seed_spec`): the candidate design
    points at one chiplet count x the seed workloads x
    {baseline, cpelide}. A serial uncached :class:`SweepRunner` run
    establishes the reference wall time and the reference result dicts;
    each worker count then executes the same sweep through
    :class:`~repro.engine.dist.DistSweepRunner` against a *fresh* shared
    cache (cold), re-asserting bit-identity against the reference every
    time. A final warm pass over the largest count's cache must report
    zero recomputes — the cross-process cache's whole point.

    Reported ``speedup`` is serial wall over distributed wall;
    ``efficiency`` normalizes it by the *usable* parallelism
    ``min(workers, cpu_count)``. On a single-CPU host every count's
    usable parallelism is 1, so efficiency stays meaningful (near 1.0
    minus orchestration overhead) where raw speedup cannot exceed ~1x;
    the environment stamp records the ``cpu_count`` that normalized it.
    """
    import os
    import tempfile

    from repro.engine import DistSweepRunner, SweepRunner
    from repro.experiments import explore

    workloads = (list(workloads) if workloads
                 else list(explore.DEFAULT_SEED_WORKLOADS))
    points = explore.design_points(chiplet_counts=(chiplets,),
                                   table_windows=(4, 8), l2_mb=(4, 8))
    spec = explore.seed_spec(points, scale, workloads)
    cpu_count = os.cpu_count() or 1

    t0 = time.perf_counter()
    serial = SweepRunner(jobs=1, cache=False).run(spec)
    serial_seconds = time.perf_counter() - t0
    reference = serial.to_dicts()
    if progress is not None:
        progress(f"  serial reference: {len(reference)} cells, "
                 f"{serial_seconds:.3f}s")

    counts: List[Dict] = []
    last_root: Optional[str] = None
    with tempfile.TemporaryDirectory(prefix="repro-dist-bench-") as tmp:
        for workers in worker_counts:
            root = os.path.join(tmp, f"cache-w{workers}")
            t0 = time.perf_counter()
            result = DistSweepRunner(workers=workers, cache=root).run(spec)
            wall = time.perf_counter() - t0
            if result.to_dicts() != reference:
                raise EquivalenceError(
                    f"distributed sweep diverged from serial reference "
                    f"({workers} workers, scale {scale:g})")
            report = result.report
            usable = min(workers, cpu_count)
            speedup = serial_seconds / wall
            counts.append({
                "workers": workers,
                "usable_workers": usable,
                "cells": report.total_jobs,
                "executed": report.executed,
                "cache_hits": report.cache_hits,
                "deduped": report.deduped,
                "per_worker_cells": list(report.per_worker_cells),
                "wall_seconds": round(wall, 6),
                "speedup": round(speedup, 3),
                "efficiency": round(speedup / usable, 3),
                "identical": True,
            })
            last_root = root
            if progress is not None:
                progress(f"  {workers} workers ({usable} usable): "
                         f"{wall:.3f}s ({speedup:.2f}x, "
                         f"eff {speedup / usable:.2f}); "
                         f"{report.summary().splitlines()[0]}")

        t0 = time.perf_counter()
        warm_result = DistSweepRunner(workers=worker_counts[-1],
                                      cache=last_root).run(spec)
        warm_wall = time.perf_counter() - t0
        warm_report = warm_result.report
        if warm_result.to_dicts() != reference:
            raise EquivalenceError(
                f"warm distributed pass diverged from serial reference "
                f"(scale {scale:g})")
        if warm_report.executed:
            raise EquivalenceError(
                f"warm distributed pass recomputed "
                f"{warm_report.executed} cells; expected zero "
                f"(all {warm_report.total_jobs} served from the shared "
                f"cache)")
        if progress is not None:
            progress(f"  warm pass: {warm_wall:.3f}s, "
                     f"{warm_report.cache_hits} hits, 0 recomputed")

    best = min(counts, key=lambda c: c["wall_seconds"])
    report = {
        "benchmark": ("distributed sweep scaling: sharded workers over a "
                      "shared result cache vs serial"),
        "sweep": "explore-seed",
        "meta": {
            "scale": scale,
            "chiplets": chiplets,
            "jobs": 1,
            "worker_counts": list(worker_counts),
            "workloads": workloads,
            "protocols": list(explore.EXPLORE_PROTOCOLS),
            "design_points": [p.label for p in points],
            "cells": len(reference),
            "python": platform.python_version(),
            "environment": bench_environment(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "counts": counts,
        "warm": {
            "workers": worker_counts[-1],
            "wall_seconds": round(warm_wall, 6),
            "cache_hits": warm_report.cache_hits,
            "executed": warm_report.executed,
            "identical": True,
        },
        "aggregate": {
            "cells": len(reference),
            "serial_seconds": round(serial_seconds, 6),
            "best_wall_seconds": best["wall_seconds"],
            "best_workers": best["workers"],
            "max_speedup": max(c["speedup"] for c in counts),
            "max_efficiency": max(c["efficiency"] for c in counts),
            "warm_speedup": round(serial_seconds / warm_wall, 3),
        },
    }
    return report


def check_dist_scaling(report: Dict,
                       min_efficiency: float = 0.5) -> Tuple[bool, str]:
    """Gate a distributed scaling report.

    Passes when every worker count's scaling efficiency (speedup per
    *usable* worker — ``min(workers, cpu_count)``) meets
    ``min_efficiency``, the warm pass recomputed nothing, and every pass
    stayed bit-identical to the serial reference. Efficiency, not raw
    speedup, is the gate so the check means the same thing on a 1-CPU
    CI runner and a 64-core host; the raw numbers stay in the report.
    """
    problems = []
    for cell in report["counts"]:
        if not cell["identical"]:
            problems.append(f"{cell['workers']} workers: not bit-identical")
        if cell["efficiency"] < min_efficiency:
            problems.append(
                f"{cell['workers']} workers: efficiency "
                f"{cell['efficiency']:.2f} < {min_efficiency:.2f} "
                f"({cell['usable_workers']} usable, "
                f"{cell['speedup']:.2f}x)")
    warm = report["warm"]
    if warm["executed"]:
        problems.append(f"warm pass recomputed {warm['executed']} cells")
    if not warm["identical"]:
        problems.append("warm pass: not bit-identical")
    if problems:
        return False, "; ".join(problems)
    agg = report["aggregate"]
    return True, (f"scaling ok: max efficiency "
                  f"{agg['max_efficiency']:.2f} "
                  f"(>= {min_efficiency:.2f}) across "
                  f"{report['meta']['worker_counts']} workers, "
                  f"warm pass 0 recomputes "
                  f"({agg['warm_speedup']:.1f}x vs serial)")


def summarize_dist(report: Dict) -> str:
    """Human-readable summary of a distributed scaling report."""
    rows = []
    for cell in report["counts"]:
        per_worker = "/".join(str(n) for n in cell["per_worker_cells"])
        rows.append(f"  {cell['workers']:>2d} workers "
                    f"({cell['usable_workers']} usable): "
                    f"{cell['wall_seconds']:7.3f}s  "
                    f"{cell['speedup']:5.2f}x  "
                    f"eff {cell['efficiency']:4.2f}  "
                    f"({per_worker} cells)")
    warm = report["warm"]
    agg = report["aggregate"]
    meta = report["meta"]
    env = meta["environment"]
    rows.append(f"  warm pass ({warm['workers']} workers): "
                f"{warm['wall_seconds']:7.3f}s  "
                f"{warm['cache_hits']} hits, {warm['executed']} recomputed")
    rows.append(
        f"aggregate (scale {meta['scale']:g}, {meta['chiplets']} chiplets, "
        f"{agg['cells']} cells, {env['cpu_count']} CPUs): "
        f"serial {agg['serial_seconds']:.2f}s, "
        f"best {agg['best_wall_seconds']:.2f}s "
        f"@ {agg['best_workers']} workers "
        f"-> {agg['max_speedup']:.2f}x "
        f"(efficiency {agg['max_efficiency']:.2f}), "
        f"warm {agg['warm_speedup']:.1f}x")
    return "\n".join(rows)
