"""Baseline VIPER-style chiplet coherence, and the monolithic reference.

The Baseline implements gem5's VIPER GPU coherence protocol extended for
chiplet-based GPUs (Sec. IV-C): remote requests are forwarded to the home
node's L2 (never cached locally), remote stores write through to the
shared L3, local stores write back into the local L2, and implicit
synchronization is fully conservative — every chiplet's L2 is flushed at
every kernel completion and invalidated at every kernel launch.

The monolithic protocol models the infeasible-to-build single-die GPU of
Fig. 2: its one big L2 is the shared ordering point for all CUs, so
kernel-boundary synchronization stops at the L1s and inter-kernel L2 reuse
is never destroyed.
"""

from __future__ import annotations

from typing import List

from repro.coherence.base import CoherenceProtocol
from repro.cp.local_cp import SyncOp, SyncOpKind
from repro.cp.packets import KernelPacket
from repro.cp.wg_scheduler import Placement


class BaselineProtocol(CoherenceProtocol):
    """Conservative chiplet-extended VIPER (the paper's Baseline)."""

    name = "baseline"

    # ---- kernel boundaries ------------------------------------------------

    def on_kernel_launch(self, packet: KernelPacket,
                         placement: Placement) -> List[SyncOp]:
        """Implicit acquire: invalidate every chiplet's L2 before launch."""
        return [SyncOp(SyncOpKind.ACQUIRE, c, reason="implicit-acquire")
                for c in range(self.config.num_chiplets)]

    def on_kernel_complete(self, packet: KernelPacket,
                           placement: Placement) -> List[SyncOp]:
        """Implicit release: flush every chiplet's dirty L2 data."""
        return [SyncOp(SyncOpKind.RELEASE, c, reason="implicit-release")
                for c in range(self.config.num_chiplets)]

    # ---- demand access path --------------------------------------------------

    def access(self, chiplet: int, line: int, is_write: bool) -> None:
        """Forward-to-home routing with WB-local / WT-remote stores."""
        device = self.device
        home = device.home_of(line, chiplet)
        counts = device.counts[chiplet]
        device.traffic.l1_request()
        device.traffic.l1_data()
        if home == chiplet:
            hit, evicted = device.l2s[chiplet].access(line, is_write)
            if hit:
                counts.l2_local_hits += 1
            else:
                counts.l2_local_misses += 1
                device.fetch_from_l3(chiplet, line)
            if evicted is not None and evicted.dirty:
                device.writeback_line(chiplet, evicted.line)
            return
        # Remote request: forwarded to the home node across the
        # inter-chiplet links; remote data is never cached locally.
        device.traffic.remote_request()
        device.traffic.remote_data()
        home_l2 = device.l2s[home]
        if is_write:
            # Remote stores write through to the shared L3 and invalidate
            # the home L2's (now stale) copy, so later readers forwarded
            # to the home node miss there and fetch the fresh value from
            # the L3. No chiplet-local dirty copy ever exists on the
            # writer's side.
            present, dirty = home_l2.invalidate_line(line)
            if present:
                counts.l2_remote_hits += 1
                if dirty:
                    # Same-kernel write after a home-local write is a race
                    # under SC-for-HRF; write the old data back anyway so
                    # the model never silently drops dirty lines.
                    device.writeback_line(home, line)
            else:
                counts.l2_remote_misses += 1
            counts.l2_writethroughs += 1
            device.l3_write(chiplet, line)
            return
        hit, evicted = home_l2.access(line, is_write=False)
        if hit:
            counts.l2_remote_hits += 1
        else:
            counts.l2_remote_misses += 1
            device.fetch_from_l3(chiplet, line)
        if evicted is not None and evicted.dirty:
            device.writeback_line(home, evicted.line)

    # ---- bulk (run) access path ------------------------------------------

    def access_run(self, chiplet: int, start: int, count: int,
                   do_load: bool, do_store: bool) -> int:
        """Per-run fast path: split on page homes, then go through the
        bulk cache/L3 operations segment-wise. Bit-identical to the
        per-line :meth:`access` sweep (the differential tests enforce
        it); only the order-insensitive bookkeeping is folded. Returns
        the number of lines homed at ``chiplet``.
        """
        device = self.device
        segments = device.home_map.home_segments(start, start + count,
                                                 chiplet)
        local = 0
        for seg_start, seg_end, home in segments:
            n = seg_end - seg_start
            if home == chiplet:
                local += n
                self._local_run(chiplet, seg_start, n, do_load, do_store)
            elif do_load and do_store:
                # A remote read-modify-write interleaves a home-L2 read
                # with an invalidation of the same line; replay per line.
                for line in range(seg_start, seg_end):
                    self.access(chiplet, line, is_write=False)
                    self.access(chiplet, line, is_write=True)
            elif do_store:
                self._remote_store_run(chiplet, home, seg_start, n)
            else:
                self._remote_load_run(chiplet, home, seg_start, n)
        return local

    def _local_run(self, chiplet: int, start: int, count: int,
                   do_load: bool, do_store: bool) -> None:
        """Home-local segment: bulk L2 access, misses served in order."""
        device = self.device
        counts = device.counts[chiplet]
        ops = count * (2 if do_load and do_store else 1)
        device.traffic.l1_request(ops)
        device.traffic.l1_data(ops)
        res = device.l2s[chiplet].bulk_access(start=start, count=count,
                                              load=do_load, store=do_store)
        counts.l2_local_hits += res.hits
        counts.l2_local_misses += res.misses
        if do_load and do_store:
            # The store following each load hits the just-filled line.
            counts.l2_local_hits += count
        if res.uniform_miss:
            device.fetch_run_from_l3(chiplet, start, count)
        elif res.events:
            device.serve_l2_miss_events(chiplet, chiplet, res.events)

    def _remote_load_run(self, chiplet: int, home: int, start: int,
                         count: int) -> None:
        """Remote read segment: bulk access at the home L2, requester-
        attributed counts, home-attributed victim writebacks."""
        device = self.device
        counts = device.counts[chiplet]
        device.traffic.l1_request(count)
        device.traffic.l1_data(count)
        device.traffic.remote_request(count)
        device.traffic.remote_data(count)
        res = device.l2s[home].bulk_access(start=start, count=count,
                                           load=True, store=False)
        counts.l2_remote_hits += res.hits
        counts.l2_remote_misses += res.misses
        if res.uniform_miss:
            device.fetch_run_from_l3(chiplet, start, count)
        elif res.events:
            device.serve_l2_miss_events(chiplet, home, res.events)

    def _remote_store_run(self, chiplet: int, home: int, start: int,
                          count: int) -> None:
        """Remote store segment: bulk invalidation at the home L2 plus a
        bulk L3 write-through; a dirty home copy (the SC-for-HRF race)
        forces the exact per-line L3 op order instead."""
        device = self.device
        counts = device.counts[chiplet]
        device.traffic.l1_request(count)
        device.traffic.l1_data(count)
        device.traffic.remote_request(count)
        device.traffic.remote_data(count)
        inv = device.l2s[home].bulk_invalidate(start=start, count=count)
        dropped, dirty = inv.dropped, inv.lines
        counts.l2_remote_hits += dropped
        counts.l2_remote_misses += count - dropped
        counts.l2_writethroughs += count
        if dirty:
            dirty_set = set(dirty)
            for line in range(start, start + count):
                if line in dirty_set:
                    device.writeback_line(home, line)
                device.l3_write(chiplet, line)
        else:
            device.l3_write_run(chiplet, start, count)


class NoSyncProtocol(BaselineProtocol):
    """Baseline data path with implicit synchronization disabled.

    Not a buildable design — an *upper bound* on inter-kernel L2 reuse
    used to compute Table II's reuse classification ("miss rate reduction
    from inter-kernel reuse with no flush/invalidation overhead",
    Sec. IV-D).
    """

    name = "nosync"

    def on_kernel_launch(self, packet: KernelPacket,
                         placement: Placement) -> List[SyncOp]:
        """No implicit acquire."""
        return []

    def on_kernel_complete(self, packet: KernelPacket,
                           placement: Placement) -> List[SyncOp]:
        """No implicit release."""
        return []


class MonolithicProtocol(BaselineProtocol):
    """Single-die GPU: one L2 shared by all CUs (Fig. 2 reference).

    Requires a 1-chiplet device (see
    :func:`repro.gpu.config.monolithic_equivalent`). Because the L2 is the
    shared point, implicit synchronization never touches it.
    """

    name = "monolithic"

    def __init__(self, config, device) -> None:
        if config.num_chiplets != 1:
            raise ValueError(
                "MonolithicProtocol requires a 1-chiplet device; build the "
                "config with monolithic_equivalent()")
        super().__init__(config, device)

    def on_kernel_launch(self, packet: KernelPacket,
                         placement: Placement) -> List[SyncOp]:
        """Only the L1s are invalidated (not modeled at the L2 level)."""
        return []

    def on_kernel_complete(self, packet: KernelPacket,
                           placement: Placement) -> List[SyncOp]:
        """Writes complete at the shared L2; no flush needed."""
        return []
