"""First-class protocol registry: :class:`ProtocolSpec` and friends.

Protocols used to be bare strings resolved through a private dict in
:mod:`repro.coherence.base`. The v4.0 API makes them first-class: a
frozen :class:`ProtocolSpec` carries the registry name, the factory, a
human-readable description, and the metadata clients need (does it use
the CPElide coherence table? which :class:`~repro.gpu.config.GPUConfig`
knobs does it read?). Everything that needs the protocol list — the
CLIs, the sweep engine, the server's ``/v1/protocols`` endpoint, the
:mod:`repro.api` facade — derives it from here, so registering a
protocol in one place is enough to make it simulatable, sweepable,
servable, and explorable.

Unknown names raise :class:`~repro.errors.ConfigError` (which is also a
``ValueError``, so pre-4.0 ``except ValueError`` callers keep working).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.coherence.base import CoherenceProtocol
    from repro.gpu.config import GPUConfig
    from repro.gpu.device import Device

__all__ = [
    "ProtocolSpec",
    "get_protocol",
    "make_protocol",
    "protocol_names",
    "protocols",
    "register_protocol",
    "unregister_protocol",
]


@dataclass(frozen=True)
class ProtocolSpec:
    """One registered coherence protocol.

    Attributes:
        name: Registry name — what CLIs, sweep specs, and server
            requests use to select the protocol.
        factory: ``factory(config, device) -> CoherenceProtocol``.
        description: One-line human-readable summary (served by
            ``GET /v1/protocols``).
        requires_table: Whether the protocol builds a CPElide-style
            Chiplet Coherence Table (and so responds to the table
            sizing knobs).
        knobs: Names of the :class:`~repro.gpu.config.GPUConfig` fields
            the protocol's behavior is parameterized by, beyond the
            shared machine configuration.
    """

    name: str
    factory: Callable[["GPUConfig", "Device"], "CoherenceProtocol"]
    description: str = ""
    requires_table: bool = False
    knobs: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError(
                f"ProtocolSpec.name must be a non-empty string, "
                f"got {self.name!r}")
        if not callable(self.factory):
            raise ConfigError(
                f"ProtocolSpec.factory must be callable, "
                f"got {self.factory!r}")
        object.__setattr__(self, "knobs", tuple(self.knobs))

    def build(self, config: "GPUConfig",
              device: "Device") -> "CoherenceProtocol":
        """Instantiate the protocol for one simulation."""
        return self.factory(config, device)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (factory omitted — not a wire
        object)."""
        return {"name": self.name, "description": self.description,
                "requires_table": bool(self.requires_table),
                "knobs": list(self.knobs)}


#: name -> ProtocolSpec. Lazily seeded with the builtins on first use so
#: importing this module stays cheap and cycle-free.
_SPECS: Dict[str, ProtocolSpec] = {}
_BUILTINS_LOADED = False

_TABLE_KNOBS = ("table_kernel_window", "table_structs_per_kernel")


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True

    from repro.coherence.cpelide import (
        CPElideProtocol,
        DriverManagedCPElideProtocol,
    )
    from repro.coherence.hmg import HMGProtocol
    from repro.coherence.timestamp import (
        CPElideTimestampProtocol,
        TimestampProtocol,
    )
    from repro.coherence.viper import (
        BaselineProtocol,
        MonolithicProtocol,
        NoSyncProtocol,
    )

    for spec in (
        ProtocolSpec(
            name="baseline", factory=BaselineProtocol,
            description="Software coherence (GPU VIPER-style): full "
                        "acquire-invalidate and release-flush at every "
                        "kernel boundary; remote lines forward to the "
                        "home chiplet's L2."),
        ProtocolSpec(
            name="nosync", factory=NoSyncProtocol,
            description="No kernel-boundary synchronization at all — "
                        "the (incorrect) performance upper bound."),
        ProtocolSpec(
            name="cpelide", factory=CPElideProtocol,
            description="CPElide: the Chiplet Coherence Table tracks "
                        "per-chiplet dirty/stale state and elides the "
                        "implicit acquires/releases that cannot be "
                        "observed.",
            requires_table=True, knobs=_TABLE_KNOBS),
        ProtocolSpec(
            name="cpelide-range",
            factory=lambda config, device: CPElideProtocol(
                config, device, range_ops=True),
            description="CPElide issuing per-address-range sync ops "
                        "instead of whole-cache flushes/invalidates.",
            requires_table=True, knobs=_TABLE_KNOBS),
        ProtocolSpec(
            name="cpelide-driver", factory=DriverManagedCPElideProtocol,
            description="CPElide managed by the host driver instead of "
                        "the command processor (Sec. VI what-if): every "
                        "table decision pays a host round trip.",
            requires_table=True, knobs=_TABLE_KNOBS),
        ProtocolSpec(
            name="hmg",
            factory=lambda config, device: HMGProtocol(
                config, device, write_back=False),
            description="HMG hierarchical coherence: write-through L2s "
                        "with per-home sharer directories; remote "
                        "fetches are cached locally."),
        ProtocolSpec(
            name="hmg-wb",
            factory=lambda config, device: HMGProtocol(
                config, device, write_back=True),
            description="HMG variant with write-back L2s (dirty remote "
                        "copies tracked by the home directory)."),
        ProtocolSpec(
            name="monolithic", factory=MonolithicProtocol,
            description="Infeasible monolithic single-die GPU with the "
                        "same aggregate resources (Fig. 2 reference)."),
        ProtocolSpec(
            name="timestamp", factory=TimestampProtocol,
            description="HALCONE-style timestamp/lease coherence: L2 "
                        "copies carry a lease and self-invalidate on "
                        "expiry instead of acquire-side flushes; writes "
                        "stamp a global write-timestamp so stale-read "
                        "detection stays exact.",
            knobs=("lease_kernels",)),
        ProtocolSpec(
            name="cpelide-ts", factory=CPElideTimestampProtocol,
            description="CPElide + timestamp hybrid: table-driven "
                        "release elision with lease-based "
                        "self-invalidation replacing acquire-side "
                        "invalidates.",
            requires_table=True,
            knobs=_TABLE_KNOBS + ("lease_kernels",)),
    ):
        _SPECS[spec.name] = spec


def register_protocol(spec: ProtocolSpec, *, replace: bool = False) -> None:
    """Register ``spec`` under ``spec.name``.

    The protocol immediately becomes available to
    :func:`repro.api.simulate`/:func:`~repro.api.sweep`, the CLI
    choices, the server's admission schemas, and ``GET /v1/protocols``.
    Raises :class:`~repro.errors.ConfigError` if the name is already
    taken and ``replace`` is false.
    """
    if not isinstance(spec, ProtocolSpec):
        raise ConfigError(
            f"register_protocol expects a ProtocolSpec, got {spec!r}")
    _ensure_builtins()
    if spec.name in _SPECS and not replace:
        raise ConfigError(
            f"protocol {spec.name!r} is already registered; pass "
            f"replace=True to override it")
    _SPECS[spec.name] = spec


def unregister_protocol(name: str) -> ProtocolSpec:
    """Remove and return the spec registered as ``name`` (test/teardown
    helper; raises :class:`~repro.errors.ConfigError` if unknown)."""
    _ensure_builtins()
    try:
        return _SPECS.pop(name)
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; choose from "
            f"{sorted(_SPECS)}") from None


def protocols() -> Tuple[ProtocolSpec, ...]:
    """All registered specs, sorted by name."""
    _ensure_builtins()
    return tuple(_SPECS[name] for name in sorted(_SPECS))


def protocol_names() -> Tuple[str, ...]:
    """All registered protocol names, sorted (drives CLI choices)."""
    _ensure_builtins()
    return tuple(sorted(_SPECS))


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a spec by name; :class:`~repro.errors.ConfigError` if
    unknown."""
    _ensure_builtins()
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; choose from "
            f"{sorted(_SPECS)}") from None


def make_protocol(name: str, config: "GPUConfig",
                  device: "Device") -> "CoherenceProtocol":
    """Instantiate a protocol by registry name."""
    return get_protocol(name).build(config, device)
