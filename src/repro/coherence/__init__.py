"""Coherence protocols for the chiplet-based GPU (Sec. IV-C).

Three evaluated configurations plus two extras:

* ``baseline`` — gem5's VIPER GPU coherence protocol extended for
  chiplet GPUs: remote requests forward to the home node, remote stores
  write through, local stores write back, and implicit synchronization
  conservatively flushes/invalidates every chiplet's L2 at every kernel
  boundary.
* ``cpelide`` — Baseline's coherence/forwarding/write policies, but
  acquires and releases are elided per the Chiplet Coherence Table.
* ``hmg`` — the state-of-the-art HMG protocol (write-through L2s, a
  per-chiplet home directory of 12K entries covering four lines each,
  remote lines cached locally, sharer invalidation).
* ``hmg-wb`` — HMG's write-back L2 variant (ablation; 13% worse geomean
  in the paper).
* ``monolithic`` — the infeasible monolithic GPU of Fig. 2 (single
  chiplet; the L2 is the shared point, so no L2-level implicit sync).
"""

from repro.coherence.base import CoherenceProtocol, make_protocol, protocol_names
from repro.coherence.viper import BaselineProtocol, MonolithicProtocol
from repro.coherence.cpelide import CPElideProtocol
from repro.coherence.hmg import HMGProtocol

__all__ = [
    "CoherenceProtocol",
    "make_protocol",
    "protocol_names",
    "BaselineProtocol",
    "MonolithicProtocol",
    "CPElideProtocol",
    "HMGProtocol",
]
