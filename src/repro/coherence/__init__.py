"""Coherence protocols for the chiplet-based GPU (Sec. IV-C).

The paper's three evaluated configurations plus the extras:

* ``baseline`` — gem5's VIPER GPU coherence protocol extended for
  chiplet GPUs: remote requests forward to the home node, remote stores
  write through, local stores write back, and implicit synchronization
  conservatively flushes/invalidates every chiplet's L2 at every kernel
  boundary.
* ``cpelide`` — Baseline's coherence/forwarding/write policies, but
  acquires and releases are elided per the Chiplet Coherence Table.
* ``hmg`` — the state-of-the-art HMG protocol (write-through L2s, a
  per-chiplet home directory of 12K entries covering four lines each,
  remote lines cached locally, sharer invalidation).
* ``hmg-wb`` — HMG's write-back L2 variant (ablation; 13% worse geomean
  in the paper).
* ``monolithic`` — the infeasible monolithic GPU of Fig. 2 (single
  chiplet; the L2 is the shared point, so no L2-level implicit sync).
* ``timestamp`` — HALCONE-style timestamp/lease coherence: cached
  copies self-invalidate on lease expiry, writes stamp a global
  write-timestamp for exact stale detection, no directory and no
  acquire-side flushes.
* ``cpelide-ts`` — the CPElide + timestamp hybrid: table-driven release
  elision with lease-based self-invalidation replacing acquire-side
  invalidates.

The set is open: :mod:`repro.coherence.registry` holds the
:class:`~repro.coherence.registry.ProtocolSpec` for each of the above,
and :func:`~repro.coherence.registry.register_protocol` makes any new
protocol simulatable, sweepable, and servable under its own name.
"""

from repro.coherence.base import CoherenceProtocol, make_protocol, protocol_names
from repro.coherence.registry import (
    ProtocolSpec,
    get_protocol,
    protocols,
    register_protocol,
    unregister_protocol,
)
from repro.coherence.viper import BaselineProtocol, MonolithicProtocol
from repro.coherence.cpelide import CPElideProtocol
from repro.coherence.hmg import HMGProtocol
from repro.coherence.timestamp import (
    CPElideTimestampProtocol,
    LeaseLedger,
    TimestampProtocol,
)

__all__ = [
    "CoherenceProtocol",
    "ProtocolSpec",
    "get_protocol",
    "make_protocol",
    "protocol_names",
    "protocols",
    "register_protocol",
    "unregister_protocol",
    "BaselineProtocol",
    "MonolithicProtocol",
    "CPElideProtocol",
    "CPElideTimestampProtocol",
    "HMGProtocol",
    "LeaseLedger",
    "TimestampProtocol",
]
