"""Coherence protocol interface.

A protocol decides (a) what synchronization happens at kernel launch and
completion boundaries and (b) how each demand access is routed through the
hierarchy. The device owns the caches and accounts traffic; protocols call
its helpers.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List

from repro.cp.local_cp import SyncOp
from repro.cp.packets import KernelPacket
from repro.cp.wg_scheduler import Placement
from repro.memory.cache import WritePolicy

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.gpu.config import GPUConfig
    from repro.gpu.device import Device


class CoherenceProtocol(abc.ABC):
    """Behaviour that differs between Baseline, CPElide, and HMG."""

    #: Registry-visible name.
    name: str = "abstract"
    #: L2 write policy the device should configure.
    l2_policy: WritePolicy = WritePolicy.WRITE_BACK
    #: Whether remotely-homed lines are cached in the requester's L2
    #: (HMG does; Baseline/CPElide forward to the home node instead).
    caches_remote_locally: bool = False

    def __init__(self, config: "GPUConfig", device: "Device") -> None:
        self.config = config
        self.device = device

    @property
    def tracer(self):
        """The device's observability tracepoint sink (never read by
        protocol logic — a pure event/metric outlet)."""
        return self.device.tracer

    # ---- kernel boundary hooks -----------------------------------------

    @abc.abstractmethod
    def on_kernel_launch(self, packet: KernelPacket,
                         placement: Placement) -> List[SyncOp]:
        """Sync ops to execute before the kernel's WGs may dispatch."""

    @abc.abstractmethod
    def on_kernel_complete(self, packet: KernelPacket,
                           placement: Placement) -> List[SyncOp]:
        """Sync ops to execute when the kernel's last WG retires."""

    def on_run_end(self) -> List[SyncOp]:
        """Final device-level release so results are host-visible.

        Every configuration must make the application's final output
        globally visible; CPElide "elides all flushes and invalidations
        except the final ones" (Sec. V-B).
        """
        from repro.cp.local_cp import SyncOpKind
        return [SyncOp(SyncOpKind.RELEASE, c, reason="run-end")
                for c in range(self.config.num_chiplets)]

    # ---- demand access path ---------------------------------------------

    @abc.abstractmethod
    def access(self, chiplet: int, line: int, is_write: bool) -> None:
        """Route one L2-visible demand access from ``chiplet``."""

    def access_run(self, chiplet: int, start: int, count: int,
                   do_load: bool, do_store: bool) -> int:
        """Route a run of ``count`` consecutive distinct-line accesses.

        Semantically identical to, per line in ascending order: an
        ``access(chiplet, line, False)`` if ``do_load`` then an
        ``access(chiplet, line, True)`` if ``do_store``. Returns how many
        of the run's lines ended up homed at ``chiplet`` (the simulator's
        L1-repeat split needs the local share, and the run path already
        knows the homes). This default is that reference loop; protocols
        override it with bulk fast paths that must stay bit-identical
        (tests/test_batched_equivalence.py is the referee).
        """
        access = self.access
        peek = self.device.home_map.peek_home_of_line
        local = 0
        if do_load and do_store:
            for line in range(start, start + count):
                access(chiplet, line, False)
                access(chiplet, line, True)
                if peek(line) == chiplet:
                    local += 1
        else:
            is_write = do_store
            for line in range(start, start + count):
                access(chiplet, line, is_write)
                if peek(line) == chiplet:
                    local += 1
        return local

    # ---- overheads ---------------------------------------------------------

    def launch_overhead_cycles(self, packet: KernelPacket) -> float:
        """Protocol-specific CP-side cycles added at this launch."""
        return 0.0

    def drain_sync_counts(self):
        """Harvest protocol-internal per-kernel sync counters (e.g. HMG's
        directory activity). Returns a fresh
        :class:`~repro.metrics.stats.SyncCounts`."""
        from repro.metrics.stats import SyncCounts
        return SyncCounts()

    # ---- memoization support (src/repro/gpu/memo.py) -------------------
    #
    # The memo trace path keys kernel outcomes on pre-state digests and
    # replays recorded deltas on a hit. A protocol exposes its *behavioral*
    # state through `memo_digest`/`memo_snapshot`/`memo_restore` and its
    # *cumulative diagnostic* counters through the counter hooks. The
    # defaults model a stateless protocol (Baseline/NoSync/Monolithic keep
    # everything in the device, which the memo layer handles itself).

    def memo_key_flags(self) -> tuple:
        """Protocol-internal facts (beyond digested state) that change a
        kernel's outcome and so must participate in the memo key — e.g.
        a first-launch overhead gate."""
        return ()

    def memo_digest(self) -> bytes:
        """128-bit digest of protocol-internal behavioral state."""
        return b""

    def memo_snapshot(self):
        """Immutable snapshot of the behavioral state, or ``None``."""
        return None

    def memo_restore(self, snapshot) -> None:
        """Restore a :meth:`memo_snapshot` (no-op for stateless)."""

    def memo_counters_begin(self):
        """Token capturing cumulative diagnostic counters before a
        recorded kernel (paired with :meth:`memo_counters_end`)."""
        return None

    def memo_counters_end(self, token):
        """Delta of the diagnostic counters since ``token``."""
        return None

    def memo_counters_apply(self, delta) -> None:
        """Replay a :meth:`memo_counters_end` delta on a memo hit."""


# Historical import location: the registry of
# :class:`~repro.coherence.registry.ProtocolSpec`\ s is the single
# source of truth since v4.0; these are the same callables.
from repro.coherence.registry import (  # noqa: E402
    make_protocol,
    protocol_names,
)
