"""HMG: hierarchical multi-GPU coherence, re-implemented (Sec. IV-C).

HMG [116] extends GPU coherence protocols across chiplets with hardware
sharer tracking, removing the need for bulk L2 flushes/invalidations at
kernel boundaries. Our model follows the paper's description of the
MCM-GPU variant they compare against:

* each GPU chiplet has an L2 coherence directory with 12K entries, each
  entry covering **four** cache lines (so the directory covers 64K lines);
* the home node always contains each memory location's most up-to-date
  value: L2s write through, and writes also go through to memory, with a
  valid copy retained in both the home and sender L2 caches;
* remote fetches are cached in the requester's L2 (this is what lets HMG
  exploit inter-kernel and remote-read locality, and also what evicts
  local data and generates invalidation traffic when remote locality is
  low);
* a directory-entry eviction invalidates every sharer's copies of all
  four covered lines — the source of HMG's pathologies on low-reuse
  workloads (Sec. V-B);
* stores invalidate all other sharers of the region.

The write-back variant (``write_back=True``) keeps stores dirty in the
requester's L2 with region-granularity ownership in the directory; the
paper measured it 13% worse geomean and used the write-through variant.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.coherence.base import CoherenceProtocol
from repro.cp.local_cp import SyncOp
from repro.cp.packets import KernelPacket
from repro.cp.wg_scheduler import Placement
from repro.memory.cache import WritePolicy
from repro.metrics.stats import SyncCounts

#: Cache lines covered by one directory entry (Sec. IV-C footnote 4).
LINES_PER_REGION = 4


@dataclass
class DirectoryEntry:
    """Sharer set (and WB owner) of one 4-line region."""

    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None  # write-back variant only


class L2Directory:
    """One home chiplet's L2 coherence directory (capacity-limited LRU)."""

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError(f"num_entries must be positive, got {num_entries}")
        self.num_entries = num_entries
        self._entries: "OrderedDict[int, DirectoryEntry]" = OrderedDict()
        self.evictions = 0

    @staticmethod
    def region_of(line: int) -> int:
        """Directory region index of a line."""
        return line // LINES_PER_REGION

    def get(self, region: int) -> Optional[DirectoryEntry]:
        """Look up a region, refreshing LRU order."""
        entry = self._entries.get(region)
        if entry is not None:
            self._entries.move_to_end(region)
        return entry

    def peek(self, region: int) -> Optional[DirectoryEntry]:
        """Look up a region *without* refreshing LRU order.

        The sanitizer probes the directory between kernels; a
        :meth:`get` there would reorder evictions and change results.
        """
        return self._entries.get(region)

    def get_or_insert(self, region: int) -> "tuple[DirectoryEntry, Optional[tuple[int, DirectoryEntry]]]":
        """Return (entry, evicted) where evicted is a displaced
        ``(region, entry)`` pair the caller must invalidate."""
        entry = self._entries.get(region)
        evicted = None
        if entry is None:
            if len(self._entries) >= self.num_entries:
                evicted = self._entries.popitem(last=False)
                self.evictions += 1
            entry = DirectoryEntry()
            self._entries[region] = entry
        else:
            self._entries.move_to_end(region)
        return entry, evicted

    def drop(self, region: int) -> None:
        """Remove a region whose sharer set became empty."""
        self._entries.pop(region, None)

    def __len__(self) -> int:
        return len(self._entries)

    # ---- memoization support ---------------------------------------------

    def memo_state(self) -> tuple:
        """Canonical immutable state: entries in LRU order with sorted
        sharer sets.

        Sharer sets hold small ints (chiplet ids), which CPython iterates
        in sorted slot order regardless of insertion history, so a
        ``set(sorted(...))`` rebuild reproduces the original set's
        iteration order — which `_invalidate_region` and
        `_invalidate_other_sharers` depend on — exactly.
        """
        return tuple((region, tuple(sorted(e.sharers)), e.owner)
                     for region, e in self._entries.items())

    def memo_restore(self, state: tuple) -> None:
        """Rebuild entries (fresh objects, preserved LRU order) from a
        :meth:`memo_state`. The ``evictions`` counter is left alone."""
        self._entries = OrderedDict(
            (region, DirectoryEntry(sharers=set(sharers), owner=owner))
            for region, sharers, owner in state)


class HMGProtocol(CoherenceProtocol):
    """The HMG comparator."""

    name = "hmg"
    caches_remote_locally = True

    #: Directory entries per chiplet at paper scale (Sec. IV-C).
    PAPER_DIR_ENTRIES = 12 * 1024

    def __init__(self, config, device, write_back: bool = False) -> None:
        super().__init__(config, device)
        self.write_back = write_back
        if write_back:
            self.name = "hmg-wb"
        self.l2_policy = (WritePolicy.WRITE_BACK if write_back
                          else WritePolicy.WRITE_THROUGH)
        device.set_l2_policy(self.l2_policy)
        # Scale the directory with the cache scale so coverage ratios
        # (entries x 4 lines vs L2 lines) match the paper's.
        entries = max(16, int(self.PAPER_DIR_ENTRIES * config.scale))
        self.directories = [L2Directory(entries)
                            for _ in range(config.num_chiplets)]
        self._sync = SyncCounts()

    # ---- kernel boundaries --------------------------------------------------

    def on_kernel_launch(self, packet: KernelPacket,
                         placement: Placement) -> List[SyncOp]:
        """Hardware coherence: no bulk L2 acquire needed."""
        return []

    def on_kernel_complete(self, packet: KernelPacket,
                           placement: Placement) -> List[SyncOp]:
        """Writes are already at their home (WT) or tracked (WB)."""
        return []

    def drain_sync_counts(self) -> SyncCounts:
        """Harvest per-kernel directory activity (sim calls per kernel)."""
        counts = self._sync
        self._sync = SyncCounts()
        return counts

    # ---- memoization support ------------------------------------------------

    def memo_digest(self) -> bytes:
        """Digest of every home directory's behavioral state (`_sync` is
        drained to zero at each kernel boundary, so it never needs to be
        part of the key or the snapshot)."""
        import hashlib

        return hashlib.blake2b(
            repr([d.memo_state() for d in self.directories]).encode(),
            digest_size=16).digest()

    def memo_snapshot(self):
        return tuple(d.memo_state() for d in self.directories)

    def memo_restore(self, snapshot) -> None:
        for directory, state in zip(self.directories, snapshot):
            directory.memo_restore(state)

    def memo_counters_begin(self):
        return tuple(d.evictions for d in self.directories)

    def memo_counters_end(self, token):
        return tuple(d.evictions - before
                     for d, before in zip(self.directories, token))

    def memo_counters_apply(self, delta) -> None:
        for directory, diff in zip(self.directories, delta):
            directory.evictions += diff

    # ---- demand access path ----------------------------------------------------

    def access(self, chiplet: int, line: int, is_write: bool) -> None:
        """Locally-caching access with directory-tracked remote sharing."""
        device = self.device
        home = device.home_of(line, chiplet)
        device.traffic.l1_request()
        device.traffic.l1_data()
        if is_write:
            self._store(chiplet, line, home)
        else:
            self._load(chiplet, line, home)

    def access_run(self, chiplet: int, start: int, count: int,
                   do_load: bool, do_store: bool) -> int:
        """Bulk path: a fully-resident load run is one aggregate L2 hit
        sweep (the hit path touches neither home nor directory), and
        everything else replays per line with the page-home lookups
        hoisted and the L1 traffic batched — bit-identical to the
        per-line sweep either way. Returns the number of lines homed at
        ``chiplet``.
        """
        device = self.device
        ops = count * (2 if do_load and do_store else 1)
        device.traffic.l1_request(ops)
        device.traffic.l1_data(ops)
        end = start + count
        home_map = device.home_map
        if not do_store:
            l2 = device.l2s[chiplet]
            if l2.run_fully_resident(start, count):
                # First-touch pages are still claimed in walk order.
                local = sum(s_end - s_start
                            for s_start, s_end, home
                            in home_map.home_segments(start, end, chiplet)
                            if home == chiplet)
                res = l2.bulk_access(start=start, count=count,
                                     load=True, store=False)
                device.counts[chiplet].l2_local_hits += res.hits
                return local
        local = 0
        for seg_start, seg_end, home in home_map.home_segments(start, end,
                                                               chiplet):
            if home == chiplet:
                local += seg_end - seg_start
            if do_load and do_store:
                for line in range(seg_start, seg_end):
                    self._load(chiplet, line, home)
                    self._store(chiplet, line, home)
            elif do_store:
                for line in range(seg_start, seg_end):
                    self._store(chiplet, line, home)
            else:
                for line in range(seg_start, seg_end):
                    self._load(chiplet, line, home)
        return local

    # ---- loads -------------------------------------------------------------

    def _load(self, chiplet: int, line: int, home: int) -> None:
        device = self.device
        counts = device.counts[chiplet]
        l2 = device.l2s[chiplet]
        hit, evicted = l2.access(line, is_write=False)
        self._absorb_l2_eviction(chiplet, evicted)
        if hit:
            counts.l2_local_hits += 1
            return
        if self.write_back:
            self._wb_fetch_owner_data(chiplet, line, home)
        if home == chiplet:
            counts.l2_local_misses += 1
            device.fetch_from_l3(chiplet, line)
            return
        device.traffic.remote_request()
        device.traffic.remote_data()
        home_l2 = device.l2s[home]
        if home_l2.lookup(line):
            # Served by the home L2 across the inter-chiplet link.
            counts.l2_remote_hits += 1
        else:
            counts.l2_remote_misses += 1
            device.fetch_from_l3(chiplet, line)
            # HMG caches remote accesses at their home node too
            # (Sec. V-B) — when remote locality is low this evicts the
            # home chiplet's useful local data.
            home_evicted = home_l2.fill(line, dirty=False)
            self._absorb_l2_eviction(home, home_evicted)
        self._register_sharer(home, line, chiplet)

    # ---- stores -------------------------------------------------------------

    def _store(self, chiplet: int, line: int, home: int) -> None:
        device = self.device
        counts = device.counts[chiplet]
        l2 = device.l2s[chiplet]
        hit, evicted = l2.access(line, is_write=True)
        self._absorb_l2_eviction(chiplet, evicted)
        if hit:
            counts.l2_local_hits += 1
        else:
            counts.l2_local_misses += 1
        self._invalidate_other_sharers(home, line, keeper=chiplet)
        if self.write_back:
            if not hit:
                # Write-allocate miss: read-for-ownership fetch of the
                # line before it can be written (WT needs no fetch since
                # the store goes through whole to the home).
                if home == chiplet:
                    device.fetch_from_l3(chiplet, line)
                else:
                    device.traffic.remote_request()
                    device.traffic.remote_data()
                    if not device.l2s[home].lookup(line):
                        device.fetch_from_l3(chiplet, line)
            # Gain region ownership; the dirty line stays local.
            entry, evicted_dir = self.directories[home].get_or_insert(
                L2Directory.region_of(line))
            if evicted_dir is not None:
                self._invalidate_region(home, *evicted_dir)
            entry.owner = chiplet
            if chiplet != home:
                entry.sharers.add(chiplet)
                device.traffic.remote_request()
            return
        # Write-through: propagate to the home L2 (which retains a valid
        # copy) and through to memory.
        counts.l2_writethroughs += 1
        if chiplet != home:
            device.traffic.remote_data()
            home_evicted = device.l2s[home].fill(line, dirty=False)
            self._absorb_l2_eviction(home, home_evicted)
            self._register_sharer(home, line, chiplet)
        device.l3_write(chiplet, line, through_to_dram=True)

    def _absorb_l2_eviction(self, chiplet: int, evicted) -> None:
        """Handle an L2 capacity eviction.

        WT L2s never hold dirty data; the WB variant writes the victim
        back. The directory's sharer bit for an evicted remote line is
        left set — exactly the imprecision that causes HMG's spurious
        invalidations at 4-line granularity.
        """
        if evicted is not None and evicted.dirty:
            self.device.writeback_line(chiplet, evicted.line)

    # ---- directory mechanics ------------------------------------------------

    def _register_sharer(self, home: int, line: int, sharer: int) -> None:
        """Record ``sharer`` for the line's region at the home directory."""
        if sharer == home:
            return
        entry, evicted = self.directories[home].get_or_insert(
            L2Directory.region_of(line))
        if evicted is not None:
            self._invalidate_region(home, *evicted)
        entry.sharers.add(sharer)

    def _invalidate_other_sharers(self, home: int, line: int,
                                  keeper: int) -> None:
        """A store invalidates every other sharer's copy of the region."""
        directory = self.directories[home]
        entry = directory.get(L2Directory.region_of(line))
        if entry is None:
            return
        losers = entry.sharers - {keeper}
        if not losers:
            return
        tracer = self.device.tracer
        if tracer.enabled:
            tracer.directory_event(action="invalidate", chiplet=home,
                                   sharers=len(losers))
        region = L2Directory.region_of(line)
        for sharer in losers:
            self._drop_region_lines(sharer, region)
            # Invalidation request plus its acknowledgment; the store
            # stalls until every sharer acknowledges.
            self.device.traffic.remote_request(2)
            self.device.counts[keeper].coherence_stalls += 1
            self._sync.dir_invalidations += 1
        entry.sharers &= {keeper}
        if self.write_back and entry.owner in losers:
            entry.owner = None

    def _invalidate_region(self, home: int, region: int,
                           entry: DirectoryEntry) -> None:
        """Directory eviction: invalidate all sharers' four lines."""
        self._sync.dir_evictions += 1
        tracer = self.device.tracer
        if tracer.enabled:
            tracer.directory_event(action="evict", chiplet=home,
                                   sharers=len(entry.sharers))
        if self.write_back and entry.owner is not None:
            self._flush_owner_region(entry.owner, region)
        for sharer in entry.sharers:
            self._drop_region_lines(sharer, region)
            # Invalidation request plus its acknowledgment; the fetch
            # that displaced the entry stalls until the sharers ack.
            self.device.traffic.remote_request(2)
            self.device.counts[home].coherence_stalls += 1
            self._sync.dir_invalidations += 1

    def _drop_region_lines(self, chiplet: int, region: int) -> None:
        """Drop the region's four lines from ``chiplet``'s L2."""
        l2 = self.device.l2s[chiplet]
        for line in range(region * LINES_PER_REGION,
                          (region + 1) * LINES_PER_REGION):
            present, dirty = l2.invalidate_line(line)
            if dirty:
                self.device.writeback_line(chiplet, line)
                self.device.traffic.remote_data()

    # ---- write-back variant helpers ---------------------------------------------

    def _wb_fetch_owner_data(self, requester: int, line: int,
                             home: int) -> None:
        """WB variant: a read must pull dirty data from the region owner."""
        entry = self.directories[home].get(L2Directory.region_of(line))
        if entry is None or entry.owner is None or entry.owner == requester:
            return
        owner_l2 = self.device.l2s[entry.owner]
        if owner_l2.flush_line(line):
            self.device.writeback_line(entry.owner, line)
            # Three-hop transfer: requester -> home -> owner -> requester.
            self.device.traffic.remote_request(2)
            self.device.traffic.remote_data()

    def _flush_owner_region(self, owner: int, region: int) -> None:
        """WB variant: a directory eviction forces the owner's dirty
        lines back and drops them — losing the owner's local reuse (why
        the paper found the WB variant reduces HMG's precise-tracking
        benefits)."""
        owner_l2 = self.device.l2s[owner]
        for line in range(region * LINES_PER_REGION,
                          (region + 1) * LINES_PER_REGION):
            present, dirty = owner_l2.invalidate_line(line)
            if dirty:
                self.device.writeback_line(owner, line)
                self.device.traffic.remote_data()
        self.device.counts[owner].coherence_stalls += 1
