"""Timestamp/lease coherence (HALCONE-style), plus the CPElide hybrid.

HALCONE ("A Hardware-Level Timestamp-based Cache Coherence Scheme for
Multi-GPU systems", PAPERS.md) replaces acquire-side bulk invalidation
with *self-invalidation*: every cached line carries a lease, and a read
whose lease has expired drops the copy and refetches instead of trusting
it. No invalidation round trips, no sharer directory — the cost is the
refetch traffic of expired-but-actually-fresh copies, which the lease
length (``GPUConfig.lease_kernels``, in kernel epochs) trades against
staleness exposure.

Two protocols live here:

* :class:`TimestampProtocol` (``timestamp``): write-through L2s that
  cache remote fetches locally (like HMG) but with **no directory** —
  leases bound how long any copy may be trusted, and every write stamps
  a global per-line write-timestamp so a copy that predates the latest
  write self-invalidates *exactly* (a ``stale`` refetch) even before its
  lease runs out. Lease expiry is therefore a pure performance knob in
  this model; the stamp check is what keeps reads correct.
* :class:`CPElideTimestampProtocol` (``cpelide-ts``): keeps CPElide's
  table-driven *release* elision and its forward-to-home write-back data
  path, but drops every acquire-side invalidation the elision engine
  would issue — cached home copies self-invalidate on lease expiry
  instead. The Chiplet Coherence Table still tracks dirty data and
  drives releases exactly as in ``cpelide``.

Time base: the :class:`LeaseLedger` clock counts *kernel epochs* and
ticks once per live :meth:`on_kernel_launch`. All behavior (expiry,
staleness, memo digests) is a function of *ages* relative to that clock,
never of absolute epochs — that is what lets the memo trace path share
recorded kernel transitions across launch indices and lets a
digest-unchanged memo hit leave the ledger untouched (no tick, no
restore) while staying bit-identical to the line and run paths.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Callable, Dict, List, Optional

from repro.coherence.base import CoherenceProtocol
from repro.coherence.cpelide import CPElideProtocol
from repro.cp.local_cp import SyncOp, SyncOpKind
from repro.cp.packets import KernelPacket
from repro.cp.wg_scheduler import Placement
from repro.memory.cache import WritePolicy
from repro.metrics.stats import SyncCounts

__all__ = ["CPElideTimestampProtocol", "LeaseLedger", "TimestampProtocol"]


class LeaseLedger:
    """Per-chiplet lease bookkeeping plus the global write-timestamp map.

    ``fills[c][line]`` is the epoch at which chiplet ``c``'s cached copy
    of ``line`` was filled or last renewed; ``stamps[line]`` is the epoch
    of the line's latest write anywhere on the device. A copy is invalid
    when its *age* (``clock - fill``) has reached the lease, or — checked
    only for un-expired copies — when a write stamped the line after the
    copy's fill.

    The check order (age first, stamp second) is load-bearing: canonical
    snapshots cap ages at the lease and prune stamps older than it, so an
    age-expired copy must report ``expiry`` no matter what the stamp map
    says, or a memo-restored ledger could flip a counter reason.
    """

    def __init__(self, num_chiplets: int, lease: int) -> None:
        self.lease = lease
        self.clock = 0
        self.fills: List[Dict[int, int]] = [{} for _ in range(num_chiplets)]
        self.stamps: Dict[int, int] = {}

    # ---- mutation -------------------------------------------------------

    def tick(self) -> None:
        """Advance one kernel epoch (live launches only — never on a
        memo replay, where state jumps via :meth:`restore` instead)."""
        self.clock += 1

    def grant(self, chiplet: int, line: int) -> None:
        """Lease (or renew) ``chiplet``'s copy of ``line`` at the
        current epoch."""
        self.fills[chiplet][line] = self.clock

    def drop(self, chiplet: int, line: int) -> None:
        """Forget ``chiplet``'s lease on ``line`` (eviction or
        self-invalidation)."""
        self.fills[chiplet].pop(line, None)

    def stamp_write(self, line: int) -> None:
        """Record a write to ``line`` at the current epoch."""
        self.stamps[line] = self.clock

    def renew_run(self, chiplet: int, start: int, count: int) -> None:
        """Bulk :meth:`grant` for a run of consecutive lines."""
        fills = self.fills[chiplet]
        clock = self.clock
        for line in range(start, start + count):
            fills[line] = clock

    # ---- validity -------------------------------------------------------

    def invalid_reason(self, chiplet: int, line: int) -> Optional[str]:
        """Why ``chiplet``'s copy of ``line`` must self-invalidate:
        ``"expiry"``, ``"stale"``, or ``None`` (valid / not leased)."""
        fill = self.fills[chiplet].get(line)
        if fill is None:
            return None
        if self.clock - fill >= self.lease:
            return "expiry"
        if fill < self.stamps.get(line, fill):
            return "stale"
        return None

    def run_valid(self, chiplet: int, start: int, count: int) -> bool:
        """Whether every line of the run holds a currently-valid lease."""
        fills = self.fills[chiplet]
        stamps = self.stamps
        clock = self.clock
        lease = self.lease
        for line in range(start, start + count):
            fill = fills.get(line)
            if (fill is None or clock - fill >= lease
                    or fill < stamps.get(line, fill)):
                return False
        return True

    # ---- memoization support --------------------------------------------

    def canonical(self) -> tuple:
        """Age-relative canonical form: per-chiplet sorted
        ``(line, age)`` with ages capped at the lease (all expired copies
        behave identically), and sorted ``(line, stamp_age)`` for stamps
        younger than the lease (an older stamp is dead — any copy it
        could invalidate is already age-expired). Translation-invariant,
        so states at different absolute clocks compare equal whenever
        they behave identically — the memo path's cross-launch-index
        sharing and the oracle's path-independent fingerprints both rely
        on this."""
        clock = self.clock
        lease = self.lease
        fills = tuple(
            tuple(sorted((line, min(clock - fill, lease))
                         for line, fill in per_chiplet.items()))
            for per_chiplet in self.fills)
        stamps = tuple(sorted((line, clock - stamp)
                              for line, stamp in self.stamps.items()
                              if clock - stamp < lease))
        return (fills, stamps)

    def digest(self) -> bytes:
        """128-bit digest of :meth:`canonical`."""
        return blake2b(repr(self.canonical()).encode(),
                       digest_size=16).digest()

    def restore(self, snapshot: tuple) -> None:
        """Rehydrate a :meth:`canonical` snapshot at the current clock
        (ages become absolute epochs again; epochs may go negative early
        in a run, which is harmless — only ages are ever compared)."""
        fills_snap, stamps_snap = snapshot
        clock = self.clock
        self.fills = [{line: clock - age for line, age in per_chiplet}
                      for per_chiplet in fills_snap]
        self.stamps = {line: clock - age for line, age in stamps_snap}


class TimestampProtocol(CoherenceProtocol):
    """HALCONE-style lease coherence on write-through L2s.

    Data path: remote fetches are cached locally *and* retained at the
    line's home L2 (which, receiving every write-through, always holds
    the freshest cached value and can serve remote requests without a
    staleness check). No directory exists; nothing is ever invalidated
    remotely. Instead each locally-cached copy self-invalidates at its
    next access once its lease expires (``lease_expiries``) or once the
    global write-stamp proves it stale (``lease_stale_refetches``).
    """

    name = "timestamp"
    l2_policy = WritePolicy.WRITE_THROUGH
    caches_remote_locally = True

    def __init__(self, config, device) -> None:
        super().__init__(config, device)
        device.set_l2_policy(WritePolicy.WRITE_THROUGH)
        self.leases = LeaseLedger(config.num_chiplets, config.lease_kernels)
        self._sync = SyncCounts()
        #: Sanitizer hook: called as ``observer(chiplet, line)`` for
        #: every lease-validated local L2 serve (never read by protocol
        #: logic). When set, the bulk fast path is disabled so every
        #: serve is individually observable.
        self.lease_observer: Optional[Callable[[int, int], None]] = None

    # ---- kernel boundaries ----------------------------------------------

    def on_kernel_launch(self, packet: KernelPacket,
                         placement: Placement) -> List[SyncOp]:
        """Advance the lease epoch; no acquire is ever issued."""
        self.leases.tick()
        return []

    def on_kernel_complete(self, packet: KernelPacket,
                           placement: Placement) -> List[SyncOp]:
        """Writes already went through to home and memory."""
        return []

    def drain_sync_counts(self) -> SyncCounts:
        """Harvest per-kernel self-invalidation counters."""
        counts = self._sync
        self._sync = SyncCounts()
        return counts

    # ---- demand access path ---------------------------------------------

    def access(self, chiplet: int, line: int, is_write: bool) -> None:
        device = self.device
        home = device.home_of(line, chiplet)
        device.traffic.l1_request()
        device.traffic.l1_data()
        if is_write:
            self._store(chiplet, line, home)
        else:
            self._load(chiplet, line, home)

    def access_run(self, chiplet: int, start: int, count: int,
                   do_load: bool, do_store: bool) -> int:
        """Bulk path: a pure-load run that is fully resident with every
        lease valid is one aggregate hit-and-renew sweep; everything
        else replays per line with homes hoisted and L1 traffic batched.
        Bit-identical to the per-line sweep either way (renewing line
        ``i`` never changes line ``j``'s validity, so checking the whole
        run up front equals checking line by line)."""
        device = self.device
        end = start + count
        home_map = device.home_map
        if not do_store and self.lease_observer is None:
            l2 = device.l2s[chiplet]
            if (l2.run_fully_resident(start, count)
                    and self.leases.run_valid(chiplet, start, count)):
                device.traffic.l1_request(count)
                device.traffic.l1_data(count)
                local = sum(seg_end - seg_start
                            for seg_start, seg_end, home
                            in home_map.home_segments(start, end, chiplet)
                            if home == chiplet)
                res = l2.bulk_access(start=start, count=count,
                                     load=True, store=False)
                device.counts[chiplet].l2_local_hits += res.hits
                self.leases.renew_run(chiplet, start, count)
                return local
        ops = count * (2 if do_load and do_store else 1)
        device.traffic.l1_request(ops)
        device.traffic.l1_data(ops)
        local = 0
        for seg_start, seg_end, home in home_map.home_segments(start, end,
                                                               chiplet):
            if home == chiplet:
                local += seg_end - seg_start
            if do_load and do_store:
                for line in range(seg_start, seg_end):
                    self._load(chiplet, line, home)
                    self._store(chiplet, line, home)
            elif do_store:
                for line in range(seg_start, seg_end):
                    self._store(chiplet, line, home)
            else:
                for line in range(seg_start, seg_end):
                    self._load(chiplet, line, home)
        return local

    # ---- loads ----------------------------------------------------------

    def _load(self, chiplet: int, line: int, home: int) -> None:
        device = self.device
        counts = device.counts[chiplet]
        l2 = device.l2s[chiplet]
        leases = self.leases
        if line in leases.fills[chiplet]:
            reason = leases.invalid_reason(chiplet, line)
            if reason is None:
                # Lease-validated local serve (guaranteed resident: the
                # ledger tracks exactly the resident lines).
                l2.access(line, is_write=False)
                counts.l2_local_hits += 1
                if self.lease_observer is not None:
                    self.lease_observer(chiplet, line)
                leases.grant(chiplet, line)
                return
            self._self_invalidate(chiplet, line, reason)
        hit, evicted = l2.access(line, is_write=False)
        self._absorb_eviction(chiplet, evicted)
        leases.grant(chiplet, line)
        if home == chiplet:
            counts.l2_local_misses += 1
            device.fetch_from_l3(chiplet, line)
            return
        device.traffic.remote_request()
        device.traffic.remote_data()
        home_l2 = device.l2s[home]
        if home_l2.lookup(line):
            # The home L2 absorbs every write-through, so its copy is
            # always the freshest cached value — serving it needs no
            # lease or stamp check (and does not renew the home's own
            # lease: the home chiplet ages its copy on its own schedule).
            counts.l2_remote_hits += 1
        else:
            counts.l2_remote_misses += 1
            device.fetch_from_l3(chiplet, line)
            home_evicted = home_l2.fill(line, dirty=False)
            self._absorb_eviction(home, home_evicted)
            leases.grant(home, line)

    # ---- stores ---------------------------------------------------------

    def _store(self, chiplet: int, line: int, home: int) -> None:
        device = self.device
        counts = device.counts[chiplet]
        l2 = device.l2s[chiplet]
        leases = self.leases
        if line in leases.fills[chiplet]:
            reason = leases.invalid_reason(chiplet, line)
            if reason is not None:
                self._self_invalidate(chiplet, line, reason)
        hit, evicted = l2.access(line, is_write=True)
        self._absorb_eviction(chiplet, evicted)
        if hit:
            counts.l2_local_hits += 1
        else:
            counts.l2_local_misses += 1
        leases.grant(chiplet, line)
        counts.l2_writethroughs += 1
        if chiplet != home:
            # Write-through to the home L2, which retains a valid copy
            # stamped at this epoch (keeping home copies always-fresh).
            device.traffic.remote_data()
            home_evicted = device.l2s[home].fill(line, dirty=False)
            self._absorb_eviction(home, home_evicted)
            leases.grant(home, line)
        leases.stamp_write(line)
        device.l3_write(chiplet, line, through_to_dram=True)

    # ---- self-invalidation ----------------------------------------------

    def _self_invalidate(self, chiplet: int, line: int, reason: str) -> None:
        present, dirty = self.device.l2s[chiplet].invalidate_line(line)
        if dirty:
            # Unreachable under WT; keep the model loss-free anyway.
            self.device.writeback_line(chiplet, line)
        self.leases.drop(chiplet, line)
        if reason == "expiry":
            self._sync.lease_expiries += 1
        else:
            self._sync.lease_stale_refetches += 1
        tracer = self.device.tracer
        if tracer.enabled:
            tracer.lease_event(action=reason, chiplet=chiplet)

    def _absorb_eviction(self, chiplet: int, evicted) -> None:
        """A capacity eviction forfeits the victim's lease (WT victims
        are never dirty; write back defensively if one ever is)."""
        if evicted is None:
            return
        self.leases.drop(chiplet, evicted.line)
        if evicted.dirty:
            self.device.writeback_line(chiplet, evicted.line)

    # ---- memoization support --------------------------------------------

    def memo_digest(self) -> bytes:
        """The lease ledger is the protocol's whole behavioral state
        (``_sync`` drains to zero at every kernel boundary)."""
        return self.leases.digest()

    def memo_snapshot(self):
        return self.leases.canonical()

    def memo_restore(self, snapshot) -> None:
        self.leases.restore(snapshot)


class CPElideTimestampProtocol(CPElideProtocol):
    """``cpelide-ts``: table-driven releases, lease-driven acquires.

    Inherits CPElide wholesale — the Chiplet Coherence Table, the
    elision engine, the launch overheads, the forward-to-home write-back
    data path — then (a) filters every ACQUIRE the engine decides to
    issue out of the launch ops (the engine still processes the launch,
    so table state and release decisions match ``cpelide`` exactly), and
    (b) bounds how long any cached home copy may be trusted with a
    lease, self-invalidating expired copies at their next access. Under
    forward-to-home routing every write either updates or invalidates
    the home copy, so no cached copy is ever stale and the dropped
    acquires are pure overhead savings; the write-stamp staleness check
    is kept anyway (and asserted by the sanitizer) to pin that argument.
    """

    name = "cpelide-ts"
    #: Sanitizer gate: acquire-side invalidation is replaced by lease
    #: expiry, so issued-acquire op sets are expected to be empty.
    lease_acquires = True

    def __init__(self, config, device) -> None:
        super().__init__(config, device)
        self.leases = LeaseLedger(config.num_chiplets, config.lease_kernels)
        self._sync = SyncCounts()
        #: Sanitizer hook, as on :class:`TimestampProtocol` (here the
        #: serving chiplet is the line's home).
        self.lease_observer: Optional[Callable[[int, int], None]] = None

    # ---- kernel boundaries ----------------------------------------------

    def on_kernel_launch(self, packet: KernelPacket,
                         placement: Placement) -> List[SyncOp]:
        """Tick the lease epoch, run the table, drop every acquire."""
        self.leases.tick()
        ops = super().on_kernel_launch(packet, placement)
        return [op for op in ops if op.kind is not SyncOpKind.ACQUIRE]

    def drain_sync_counts(self) -> SyncCounts:
        counts = self._sync
        self._sync = SyncCounts()
        return counts

    # ---- demand access path ---------------------------------------------

    def access(self, chiplet: int, line: int, is_write: bool) -> None:
        """Baseline's forward-to-home routing with a lease check on the
        home copy before every use.

        Reimplemented rather than wrapped: the ledger must see every
        fill and every eviction the home L2 performs, which
        ``BaselineProtocol.access`` handles internally.
        """
        device = self.device
        home = device.home_of(line, chiplet)
        counts = device.counts[chiplet]
        device.traffic.l1_request()
        device.traffic.l1_data()
        self._lease_check(home, line)
        home_l2 = device.l2s[home]
        leases = self.leases
        if home == chiplet:
            hit, evicted = home_l2.access(line, is_write)
            if hit:
                counts.l2_local_hits += 1
                if not is_write and self.lease_observer is not None:
                    self.lease_observer(home, line)
            else:
                counts.l2_local_misses += 1
                device.fetch_from_l3(chiplet, line)
            leases.grant(home, line)
            if is_write:
                leases.stamp_write(line)
            self._absorb_home_eviction(home, evicted)
            return
        device.traffic.remote_request()
        device.traffic.remote_data()
        if is_write:
            # Remote stores write through to the L3 and invalidate the
            # home copy (Baseline semantics); the stamp records the
            # write so the staleness check stays exact.
            present, dirty = home_l2.invalidate_line(line)
            if present:
                counts.l2_remote_hits += 1
                leases.drop(home, line)
                if dirty:
                    device.writeback_line(home, line)
            else:
                counts.l2_remote_misses += 1
            counts.l2_writethroughs += 1
            leases.stamp_write(line)
            device.l3_write(chiplet, line)
            return
        hit, evicted = home_l2.access(line, is_write=False)
        if hit:
            counts.l2_remote_hits += 1
            if self.lease_observer is not None:
                self.lease_observer(home, line)
        else:
            counts.l2_remote_misses += 1
            device.fetch_from_l3(chiplet, line)
        leases.grant(home, line)
        self._absorb_home_eviction(home, evicted)

    def access_run(self, chiplet: int, start: int, count: int,
                   do_load: bool, do_store: bool) -> int:
        """Bulk path: per home segment, a pure-load run that is fully
        resident at the home L2 with every lease valid is one aggregate
        hit-and-renew sweep; anything else replays per line through
        :meth:`access`. Bit-identical to the per-line sweep."""
        device = self.device
        segments = device.home_map.home_segments(start, start + count,
                                                 chiplet)
        leases = self.leases
        local = 0
        for seg_start, seg_end, home in segments:
            n = seg_end - seg_start
            if home == chiplet:
                local += n
            if (not do_store and self.lease_observer is None
                    and device.l2s[home].run_fully_resident(seg_start, n)
                    and leases.run_valid(home, seg_start, n)):
                device.traffic.l1_request(n)
                device.traffic.l1_data(n)
                counts = device.counts[chiplet]
                if home == chiplet:
                    counts.l2_local_hits += n
                else:
                    device.traffic.remote_request(n)
                    device.traffic.remote_data(n)
                    counts.l2_remote_hits += n
                device.l2s[home].bulk_access(start=seg_start, count=n,
                                             load=True, store=False)
                leases.renew_run(home, seg_start, n)
            elif do_load and do_store:
                for line in range(seg_start, seg_end):
                    self.access(chiplet, line, is_write=False)
                    self.access(chiplet, line, is_write=True)
            else:
                for line in range(seg_start, seg_end):
                    self.access(chiplet, line, do_store)
        return local

    # ---- lease mechanics ------------------------------------------------

    def _lease_check(self, home: int, line: int) -> None:
        """Self-invalidate the home copy if its lease no longer covers
        it (writing dirty data back first — an expired dirty line is an
        early partial release, never a loss)."""
        reason = self.leases.invalid_reason(home, line)
        if reason is None:
            return
        present, dirty = self.device.l2s[home].invalidate_line(line)
        if dirty:
            self.device.writeback_line(home, line)
        self.leases.drop(home, line)
        if reason == "expiry":
            self._sync.lease_expiries += 1
        else:
            self._sync.lease_stale_refetches += 1
        tracer = self.device.tracer
        if tracer.enabled:
            tracer.lease_event(action=reason, chiplet=home)

    def _absorb_home_eviction(self, home: int, evicted) -> None:
        if evicted is None:
            return
        self.leases.drop(home, evicted.line)
        if evicted.dirty:
            self.device.writeback_line(home, evicted.line)

    # ---- memoization support --------------------------------------------

    def memo_digest(self) -> bytes:
        return blake2b(self.table.memo_digest() + self.leases.digest(),
                       digest_size=16).digest()

    def memo_snapshot(self):
        return (self.table.memo_snapshot(), self.leases.canonical())

    def memo_restore(self, snapshot) -> None:
        table_snap, lease_snap = snapshot
        self.table.memo_restore(table_snap)
        self.leases.restore(lease_snap)
