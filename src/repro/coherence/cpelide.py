"""CPElide protocol glue: Baseline's data path + table-driven sync.

CPElide does not modify the underlying coherence protocol (Sec. III-A): it
keeps Baseline's forwarding and write policies and only changes *when and
where* the implicit acquires and releases happen, as decided by the
elision engine over the Chiplet Coherence Table housed in the global CP.

That inheritance covers the demand path wholesale: both the per-line
``access`` and the batched ``access_run`` fast path (and the bulk sync-op
execution underneath ``on_kernel_launch``/``complete``'s acquire/release
ops) come straight from :class:`~repro.coherence.viper.BaselineProtocol`
and the device, so CPElide runs at full run-trace speed with no code of
its own.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coherence.viper import BaselineProtocol
from repro.core.elision import ElisionEngine, ElisionOutcome
from repro.core.states import ChipletState
from repro.core.table import ChipletCoherenceTable
from repro.cp.local_cp import SyncOp, SyncOpKind
from repro.cp.packets import KernelPacket
from repro.cp.wg_scheduler import Placement


class CPElideProtocol(BaselineProtocol):
    """The proposed approach (Sec. III).

    Args:
        range_ops: Enable the Sec. VI fine-grained hardware range-based
            flush extension — sync ops carry byte ranges and only walk the
            affected lines instead of the whole L2 (requires the
            virtual-to-physical translation support the paper sketches).
    """

    name = "cpelide"

    def __init__(self, config, device, range_ops: bool = False) -> None:
        super().__init__(config, device)
        self.table = ChipletCoherenceTable(
            num_chiplets=config.num_chiplets,
            structs_per_kernel=config.table_structs_per_kernel,
            kernel_window=config.table_kernel_window,
        )
        # The simulator installs its tracer on the device before building
        # the protocol, so the table can share it from construction.
        self.table.tracer = device.tracer
        self.engine = ElisionEngine(self.table)
        self.range_ops = range_ops
        if range_ops:
            self.name = "cpelide-range"
        self.last_outcome: Optional[ElisionOutcome] = None
        self._launches = 0

    # ---- kernel boundaries -----------------------------------------------

    def on_kernel_launch(self, packet: KernelPacket,
                         placement: Placement) -> List[SyncOp]:
        """Run the once-per-kernel table check; issue only necessary ops."""
        outcome = self.engine.process_launch(packet, placement)
        self.last_outcome = outcome
        self._launches += 1
        if not self.range_ops:
            return outcome.ops
        return [self._attach_ranges(op, packet, placement)
                for op in outcome.ops]

    def on_kernel_complete(self, packet: KernelPacket,
                           placement: Placement) -> List[SyncOp]:
        """Releases are lazy (issued at a later launch), so: nothing."""
        return []

    # ---- overheads ----------------------------------------------------------

    def launch_overhead_cycles(self, packet: KernelPacket) -> float:
        """CPElide's table operations take ~6 us of CP time (Sec. IV-B).

        GPUs enqueue kernels before launch, so this latency is hidden
        behind the previous kernel's execution for all but the first
        kernel (nearly every kernel runs longer than 6 us).
        """
        if self._launches == 1:
            return self.config.cpelide_op_cycles
        return 0.0

    # ---- memoization support ---------------------------------------------

    def memo_key_flags(self) -> tuple:
        """Whether the *next* launch is the first one: it alone pays the
        table-operation overhead (``launch_overhead_cycles`` fires when
        ``_launches == 1`` post-increment), so two otherwise identical
        kernels at launch index 0 and N must not share a memo entry."""
        return (self._launches == 0,)

    def memo_digest(self) -> bytes:
        """The Chiplet Coherence Table is CPElide's behavioral state."""
        return self.table.memo_digest()

    def memo_snapshot(self):
        return self.table.memo_snapshot()

    def memo_restore(self, snapshot) -> None:
        self.table.memo_restore(snapshot)

    def memo_counters_begin(self):
        """Arm the exact per-kernel peak-occupancy measurement.

        ``peak_entries`` only ever advances as ``max(peak, len(entries))``
        inside ``get_or_create``, so zeroing it for the kernel and folding
        the observed kernel-local peak back with ``max`` afterwards is
        exact — and the kernel-local peak is replayable on a hit.
        """
        token = (self.table.peak_entries, self.table.overflow_evictions)
        self.table.peak_entries = 0
        return token

    def memo_counters_end(self, token):
        peak_before, overflow_before = token
        kernel_peak = self.table.peak_entries
        self.table.peak_entries = max(peak_before, kernel_peak)
        return (kernel_peak,
                self.table.overflow_evictions - overflow_before)

    def memo_counters_apply(self, delta) -> None:
        kernel_peak, overflow_delta = delta
        self.table.peak_entries = max(self.table.peak_entries, kernel_peak)
        self.table.overflow_evictions += overflow_delta
        self._launches += 1

    # ---- range extension -------------------------------------------------------

    def _attach_ranges(self, op: SyncOp, packet: KernelPacket,
                       placement: Placement) -> SyncOp:
        """Restrict ``op`` to the byte ranges that actually need it.

        The elision engine records each op's target ranges at decision
        time (the dirty holder's tracked range for a release, the stale
        tracked range for an acquire), so unrelated resident data — e.g.
        a graph's read-only adjacency lists while the color array is
        invalidated — survives the operation. Ops without recorded ranges
        (the table-overflow fallback) stay whole-cache, preserving
        correctness.
        """
        outcome = self.last_outcome
        if outcome is None:
            return op
        if op.kind is SyncOpKind.RELEASE:
            ranges = outcome.release_ranges.get(op.chiplet)
        else:
            ranges = outcome.acquire_ranges.get(op.chiplet)
        if not ranges:
            return op
        return SyncOp(op.kind, op.chiplet, op.reason, ranges=tuple(ranges))

    # ---- introspection -----------------------------------------------------------

    def host_roundtrip_cycles(self) -> float:
        """GPU cycles of one CP<->driver round trip, at simulation scale."""
        return (self.config.host_roundtrip_latency_s
                * self.config.gpu_clock_hz
                * self.config.effective_overhead_scale)

    def table_state(self, buffer_base: int,
                    chiplet: int) -> ChipletState:
        """Current table state of the row whose extent covers
        ``buffer_base`` for ``chiplet`` (Not Present if untracked)."""
        for entry in self.table.entries:
            if entry.base <= buffer_base < entry.end:
                return entry.states[chiplet]
        return ChipletState.NOT_PRESENT


class DriverManagedCPElideProtocol(CPElideProtocol):
    """The Sec. VI what-if: implicit synchronization managed at the driver.

    The GPU driver also knows which data structures each kernel accesses,
    so it *could* run the elision algorithm — but it does not know which
    chiplet(s) a kernel's WGs will be scheduled on, so the CP would have
    to send the scheduling decision to the host and wait for the driver's
    verdict at every kernel launch. Prior work shows such host round
    trips add significant latency [28, 79, 140]; this variant makes the
    same elision decisions as CPElide but charges one host round trip per
    kernel launch on the critical path.
    """

    name = "cpelide-driver"

    def launch_overhead_cycles(self, packet: KernelPacket) -> float:
        """Every launch waits on a CP -> driver -> CP round trip (the
        scheduling information cannot be batched ahead of time), on top
        of the first-kernel table-operation cost."""
        return (super().launch_overhead_cycles(packet)
                + self.host_roundtrip_cycles())
