"""The Chiplet Coherence Table (Sec. III-A, Fig. 5).

Lives in the global CP's private memory. Each row tracks one data
structure (or one coarsened group of structures) with four fields: the
structure's base address, the per-chiplet address ranges, the access mode,
and a 2n-bit chiplet vector holding each chiplet's
:class:`~repro.core.states.ChipletState`.

Sizing (Sec. III-A): prior work found most GPU programs access <= 8 data
structures per kernel, reused within ~4 kernels; the table is
conservatively sized at 8 structures x 8 kernels = 64 entries, ~2 KB for a
4-chiplet system, fitting in the CP's private memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.regions import AccessRegion, ByteRange, merge_ranges, ranges_overlap
from repro.core.states import ChipletState
from repro.cp.packets import AccessMode
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclass
class TableEntry:
    """One row of the Chiplet Coherence Table.

    Attributes:
        name: Data structure name(s) (coarsened rows join names with '+').
        base: Byte base of the tracked extent (the 4-byte base field).
        end: One past the tracked extent.
        mode: Access-mode bit of the most recent access.
        states: Per-chiplet 2-bit state (the chiplet vector).
        ranges: Per-chiplet tracked byte range (the 28-byte ranges field).
        home_ranges: Per-chiplet cacheable extent. Under forward-to-home
            routing a chiplet's L2 only ever holds lines *homed* on that
            chiplet, and first-touch placement homes each slice at the
            chiplet that accessed it in the structure's first kernel —
            scheduling information the global CP has (Sec. I). Tracked
            ranges are clipped to this extent so that, e.g., a stencil's
            remote halo reads do not create phantom residency that would
            trigger spurious whole-cache acquires.
    """

    name: str
    base: int
    end: int
    mode: AccessMode
    states: List[ChipletState]
    ranges: List[Optional[ByteRange]]
    home_ranges: List[Optional[ByteRange]]

    @classmethod
    def blank(cls, name: str, base: int, end: int, mode: AccessMode,
              num_chiplets: int) -> "TableEntry":
        """A fresh row with every chiplet Not Present."""
        return cls(name=name, base=base, end=end, mode=mode,
                   states=[ChipletState.NOT_PRESENT] * num_chiplets,
                   ranges=[None] * num_chiplets,
                   home_ranges=[None] * num_chiplets)

    def is_empty(self) -> bool:
        """Whether every chiplet is Not Present (row removable, Sec. III-C)."""
        return all(s is ChipletState.NOT_PRESENT for s in self.states)

    def chiplets_in(self, *states: ChipletState) -> List[int]:
        """Chiplet ids whose state is one of ``states``."""
        wanted = set(states)
        return [c for c, s in enumerate(self.states) if s in wanted]

    def storage_bits(self, num_chiplets: int) -> int:
        """Bits this row occupies (Sec. III-A: 1B vector + 1b mode +
        28B ranges + 4B base per entry, scaled to the chiplet count)."""
        vector_bits = 2 * num_chiplets
        mode_bits = 1
        range_bits = 28 * 8
        base_bits = 4 * 8
        return vector_bits + mode_bits + range_bits + base_bits


class ChipletCoherenceTable:
    """Capacity-bounded table of :class:`TableEntry` rows with LRU order."""

    def __init__(self, num_chiplets: int, structs_per_kernel: int = 8,
                 kernel_window: int = 8) -> None:
        if num_chiplets <= 0:
            raise ValueError(f"num_chiplets must be positive, got {num_chiplets}")
        self.num_chiplets = num_chiplets
        self.structs_per_kernel = structs_per_kernel
        self.capacity = structs_per_kernel * kernel_window
        # base address -> entry, in LRU order (least recent first).
        self._entries: "OrderedDict[int, TableEntry]" = OrderedDict()
        self.peak_entries = 0
        self.overflow_evictions = 0
        #: Observability sink (the owning protocol points this at the
        #: device's tracer); never read by table logic.
        self.tracer: Tracer = NULL_TRACER

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[TableEntry]:
        """All rows, LRU first."""
        return list(self._entries.values())

    def find_overlapping(self, base: int, end: int) -> List[TableEntry]:
        """Rows whose extent intersects ``[base, end)``."""
        return [e for e in self._entries.values()
                if ranges_overlap((e.base, e.end), (base, end))]

    def touch(self, entry: TableEntry) -> None:
        """Mark ``entry`` most recently used."""
        self._entries.move_to_end(entry.base)

    # ------------------------------------------------------------------

    def get_or_create(self, region: AccessRegion) -> Tuple[TableEntry, Optional[TableEntry]]:
        """Find (merging) or create the row for ``region``.

        Overlapping existing rows are merged into one (a coarsened row may
        cover several structures). Returns ``(entry, evicted)`` where
        ``evicted`` is a victim row dropped to make space — the caller must
        conservatively synchronize the victim's chiplets (overflow fallback
        behaves like the baseline, Sec. III-C "Indirect & Irregular").
        """
        overlapping = self.find_overlapping(region.base, region.end)
        evicted: Optional[TableEntry] = None
        if overlapping:
            entry = overlapping[0]
            for extra in overlapping[1:]:
                self._merge_into(entry, extra)
            self._extend(entry, region)
            self.touch(entry)
        else:
            if len(self._entries) >= self.capacity:
                _, evicted = self._entries.popitem(last=False)
                self.overflow_evictions += 1
                if self.tracer.enabled:
                    self.tracer.table_evict(
                        name=evicted.name, base=evicted.base,
                        end=evicted.end, rows=len(self._entries),
                        reason="overflow")
            entry = TableEntry.blank(region.name, region.base, region.end,
                                     region.mode, self.num_chiplets)
            self._entries[entry.base] = entry
            if self.tracer.enabled:
                self.tracer.table_insert(name=entry.name, base=entry.base,
                                         end=entry.end,
                                         rows=len(self._entries))
        self.peak_entries = max(self.peak_entries, len(self._entries))
        return entry, evicted

    def _merge_into(self, dst: TableEntry, src: TableEntry) -> None:
        """Fold ``src`` into ``dst`` conservatively and remove ``src``."""
        from repro.core.states import merge_conservative

        if self.tracer.enabled:
            self.tracer.table_evict(name=src.name, base=src.base,
                                    end=src.end, rows=len(self._entries) - 1,
                                    reason="merge")
        del self._entries[src.base]
        old_base = dst.base
        dst.name = f"{dst.name}+{src.name}"
        dst.base = min(dst.base, src.base)
        dst.end = max(dst.end, src.end)
        for c in range(self.num_chiplets):
            dst.states[c] = merge_conservative(dst.states[c], src.states[c])
            dst.ranges[c] = merge_ranges(dst.ranges[c], src.ranges[c])
            dst.home_ranges[c] = merge_ranges(dst.home_ranges[c],
                                              src.home_ranges[c])
        if dst.base != old_base:
            del self._entries[old_base]
            self._entries[dst.base] = dst

    def _extend(self, entry: TableEntry, region: AccessRegion) -> None:
        """Grow ``entry``'s extent to cover ``region`` (keyed by base)."""
        if region.base < entry.base:
            del self._entries[entry.base]
            entry.base = region.base
            self._entries[entry.base] = entry
        entry.end = max(entry.end, region.end)
        entry.mode = region.mode

    def remove_if_empty(self, entry: TableEntry) -> bool:
        """Drop ``entry`` if every chiplet is Not Present (Sec. III-C)."""
        if entry.is_empty() and entry.base in self._entries:
            del self._entries[entry.base]
            if self.tracer.enabled:
                self.tracer.table_evict(name=entry.name, base=entry.base,
                                        end=entry.end,
                                        rows=len(self._entries),
                                        reason="empty")
            return True
        return False

    # ------------------------------------------------------------------
    # Whole-cache side effects of issued sync ops (the global CP cannot
    # issue range operations, so an acquire/release touches every row).
    # ------------------------------------------------------------------

    def on_chiplet_acquired(self, chiplet: int) -> None:
        """An acquire invalidated ``chiplet``'s whole L2: every row's state
        for that chiplet becomes Not Present; empty rows are removed."""
        trace = self.tracer.enabled
        for entry in list(self._entries.values()):
            if trace and entry.states[chiplet] is not ChipletState.NOT_PRESENT:
                self.tracer.table_transition(
                    name=entry.name, chiplet=chiplet,
                    old=entry.states[chiplet].name,
                    new=ChipletState.NOT_PRESENT.name)
            entry.states[chiplet] = ChipletState.NOT_PRESENT
            entry.ranges[chiplet] = None
            self.remove_if_empty(entry)

    def on_chiplet_released(self, chiplet: int) -> None:
        """A release flushed ``chiplet``'s whole L2: every Dirty row for
        that chiplet becomes Valid (clean copies are retained)."""
        trace = self.tracer.enabled
        for entry in self._entries.values():
            if entry.states[chiplet] is ChipletState.DIRTY:
                if trace:
                    self.tracer.table_transition(
                        name=entry.name, chiplet=chiplet,
                        old=ChipletState.DIRTY.name,
                        new=ChipletState.VALID.name)
                entry.states[chiplet] = ChipletState.VALID

    # ------------------------------------------------------------------
    # Memoization support (state digest + snapshot/restore)
    # ------------------------------------------------------------------
    #
    # Behavioral state is the rows in LRU order with every field that
    # influences future decisions (extent, mode, per-chiplet states and
    # ranges). `peak_entries`/`overflow_evictions` are cumulative
    # diagnostics and are replayed as deltas by the memo layer, not
    # digested here.

    def memo_state(self) -> tuple:
        """The behavioral state as an immutable canonical structure."""
        return tuple(
            (e.name, e.base, e.end, e.mode.value,
             tuple(s.value for s in e.states),
             tuple(e.ranges), tuple(e.home_ranges))
            for e in self._entries.values())

    def memo_digest(self) -> bytes:
        """A 128-bit deterministic digest of :meth:`memo_state`."""
        import hashlib

        return hashlib.blake2b(repr(self.memo_state()).encode(),
                               digest_size=16).digest()

    def memo_snapshot(self) -> tuple:
        """An immutable snapshot of the rows for :meth:`memo_restore`."""
        return tuple(
            (e.name, e.base, e.end, e.mode, tuple(e.states),
             tuple(e.ranges), tuple(e.home_ranges))
            for e in self._entries.values())

    def memo_restore(self, snapshot: tuple) -> None:
        """Rebuild the rows from a :meth:`memo_snapshot`.

        Installs *fresh* :class:`TableEntry` objects (rows are mutated in
        place by the protocol, so a stored snapshot must never alias live
        entries), preserving LRU order. Counters are left alone.
        """
        entries: "OrderedDict[int, TableEntry]" = OrderedDict()
        for name, base, end, mode, states, ranges, home_ranges in snapshot:
            entries[base] = TableEntry(
                name=name, base=base, end=end, mode=mode,
                states=list(states), ranges=list(ranges),
                home_ranges=list(home_ranges))
        self._entries = entries

    # ------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Total bytes at full capacity (the ~2 KB claim of Sec. III-A)."""
        sample = TableEntry.blank("", 0, 1, AccessMode.R, self.num_chiplets)
        bits_per_row = sample.storage_bits(self.num_chiplets)
        return (bits_per_row * self.capacity + 7) // 8
