"""The elision engine: lazy, per-chiplet acquire/release generation.

This is the launch-time algorithm of Sec. III-C:

* **Generating release requests** — a release (flush) for chiplet *j* is
  sent only when a soon-to-be-launched kernel will access, on some *other*
  chiplet, a range that is Dirty on *j*. If the next kernel accessing the
  data runs on the same chiplet(s) over the same range(s), the release is
  elided.
* **Generating acquire requests** — an acquire (invalidate) for chiplet
  *i* is sent only when the new kernel will access, on *i*, a range that
  is Stale on *i*.
* **Lazy ordering** — the release executes after the acquire associated
  with the new kernel but before the kernel issues any memory access, so
  SC-for-HRF results are preserved while the producer chiplet retains
  clean copies of the lines it just wrote.
* Each check happens once per kernel; after ops complete, fully
  Not-Present rows are removed from the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.coarsening import coarsen_regions
from repro.core.regions import (
    AccessRegion,
    intersect_ranges,
    merge_ranges,
    ranges_overlap,
    region_from_arg,
)
from repro.core.states import ChipletState
from repro.core.table import ChipletCoherenceTable, TableEntry
from repro.cp.local_cp import SyncOp, SyncOpKind
from repro.cp.packets import KernelPacket
from repro.cp.wg_scheduler import Placement


@dataclass
class ElisionOutcome:
    """What one launch-time table check decided.

    Attributes:
        ops: Sync ops to execute, already ordered (per-chiplet
            release-before-acquire where both target one chiplet, acquires
            otherwise preceding releases per the lazy-release rule).
        acquires_issued / releases_issued: Distinct chiplets targeted.
        acquires_elided / releases_elided: Chiplets the conservative
            baseline would have synchronized but CPElide did not.
        table_checks: Rows inspected (the once-per-kernel check count).
        release_ranges / acquire_ranges: Per-chiplet byte ranges the ops
            actually need to touch, captured at decision time (before the
            table's whole-cache side effects clear them) — consumed by
            the Sec. VI hardware range-based flush extension.
    """

    ops: List[SyncOp] = field(default_factory=list)
    acquires_issued: int = 0
    releases_issued: int = 0
    acquires_elided: int = 0
    releases_elided: int = 0
    table_checks: int = 0
    release_ranges: "Dict[int, List[tuple]]" = field(default_factory=dict)
    acquire_ranges: "Dict[int, List[tuple]]" = field(default_factory=dict)


class ElisionEngine:
    """Drives the Chiplet Coherence Table at every kernel launch."""

    def __init__(self, table: ChipletCoherenceTable) -> None:
        self.table = table

    def _trace_transition(self, entry: TableEntry, chiplet: int,
                          new: ChipletState) -> None:
        """Tracepoint for one chiplet-vector edge (no-op when disabled
        or when the state does not actually change)."""
        tracer = self.table.tracer
        if tracer.enabled and entry.states[chiplet] is not new:
            tracer.table_transition(name=entry.name, chiplet=chiplet,
                                    old=entry.states[chiplet].name,
                                    new=new.name)

    # ------------------------------------------------------------------

    def process_launch(self, packet: KernelPacket,
                       placement: Placement) -> ElisionOutcome:
        """Run the once-per-kernel table check and update (Sec. III-C)."""
        regions = [region_from_arg(arg, placement) for arg in packet.args]
        if len(regions) > self.table.structs_per_kernel:
            regions = coarsen_regions(regions, self.table.structs_per_kernel)

        outcome = ElisionOutcome()
        release_targets: Set[int] = set()
        acquire_targets: Set[int] = set()

        # Pass 1: inspect existing rows against the new kernel's accesses.
        for region in regions:
            for entry in self.table.find_overlapping(region.base, region.end):
                outcome.table_checks += 1
                self._collect_ops(entry, region, release_targets,
                                  acquire_targets, outcome)

        # Pass 2: whole-cache side effects of the issued ops on every row.
        # Release must precede acquire on a chiplet needing both, so its
        # dirty data is written back before the invalidate drops it.
        for chiplet in sorted(release_targets):
            self.table.on_chiplet_released(chiplet)
        for chiplet in sorted(acquire_targets):
            self.table.on_chiplet_acquired(chiplet)

        # Pass 3: install the new kernel's accesses (state transitions
        # occur at kernel launch, before the kernel runs — Sec. III-B).
        for region in regions:
            evict_ops = self._install(region)
            outcome.ops.extend(evict_ops)

        outcome.ops = self._order_ops(release_targets, acquire_targets) + outcome.ops
        num = self.table.num_chiplets
        outcome.releases_issued = len(release_targets)
        outcome.acquires_issued = len(acquire_targets)
        outcome.releases_elided = num - len(release_targets)
        outcome.acquires_elided = num - len(acquire_targets)
        return outcome

    # ------------------------------------------------------------------

    def _collect_ops(self, entry: TableEntry, region: AccessRegion,
                     release_targets: Set[int],
                     acquire_targets: Set[int],
                     outcome: ElisionOutcome) -> None:
        """Decide which chiplets need a flush or an invalidate for one
        (row, new-access) pair, recording the target ranges for the
        range-based-flush extension."""
        for holder, state in enumerate(entry.states):
            held_range = entry.ranges[holder]
            if state is ChipletState.DIRTY:
                # Another chiplet will access data Dirty here -> flush.
                for accessor, rng in region.chiplet_ranges.items():
                    if accessor != holder and ranges_overlap(held_range, rng):
                        release_targets.add(holder)
                        outcome.release_ranges.setdefault(holder, []).append(
                            held_range)
                        break
            elif state is ChipletState.STALE:
                # This chiplet will access a range Stale here -> invalidate.
                rng = region.chiplet_ranges.get(holder)
                if rng is not None and ranges_overlap(held_range, rng):
                    acquire_targets.add(holder)
                    outcome.acquire_ranges.setdefault(holder, []).append(
                        held_range)

    def _install(self, region: AccessRegion) -> List[SyncOp]:
        """Record the new kernel's access in the table.

        Returns conservative sync ops for any row evicted on overflow
        (the fallback behaves like the baseline for that row).
        """
        entry, evicted = self.table.get_or_create(region)
        ops: List[SyncOp] = []
        if evicted is not None:
            # Losing a row loses the staleness knowledge it carried:
            # conservatively flush its dirty holders and invalidate every
            # holder, exactly what the baseline would have done.
            for chiplet in evicted.chiplets_in(ChipletState.DIRTY):
                ops.append(SyncOp(SyncOpKind.RELEASE, chiplet,
                                  reason=f"table-overflow:{evicted.name}"))
            for chiplet in evicted.chiplets_in(ChipletState.VALID,
                                               ChipletState.DIRTY,
                                               ChipletState.STALE):
                ops.append(SyncOp(SyncOpKind.ACQUIRE, chiplet,
                                  reason=f"table-overflow:{evicted.name}"))
                self.table.on_chiplet_acquired(chiplet)

        # Mark resident copies on non-accessing chiplets Stale when the
        # new kernel writes an overlapping range (Valid->Stale and
        # post-flush Dirty->Stale transitions of Fig. 6).
        if region.mode.writes:
            for holder in range(self.table.num_chiplets):
                if holder in region.chiplet_ranges:
                    continue
                if entry.states[holder] in (ChipletState.VALID,
                                            ChipletState.STALE):
                    held = entry.ranges[holder]
                    if any(ranges_overlap(held, rng)
                           for rng in region.chiplet_ranges.values()):
                        self._trace_transition(entry, holder,
                                               ChipletState.STALE)
                        entry.states[holder] = ChipletState.STALE

        # First access to the structure: first-touch placement homes each
        # chiplet's accessed slice on that chiplet, fixing its cacheable
        # extent from here on (scheduling information the global CP has).
        if all(hr is None for hr in entry.home_ranges):
            for chiplet, rng in region.chiplet_ranges.items():
                entry.home_ranges[chiplet] = rng

        # The accessing chiplets' new states. Tracked residency is clipped
        # to each chiplet's cacheable (home) extent: remote accesses are
        # forwarded to the home node and leave nothing in the local L2.
        for chiplet, rng in region.chiplet_ranges.items():
            home = entry.home_ranges[chiplet]
            cached = intersect_ranges(rng, home) if home is not None else None
            if cached is None and home is not None:
                # Purely remote access: nothing newly resident here.
                continue
            effective = cached if cached is not None else rng
            if region.mode.writes:
                self._trace_transition(entry, chiplet, ChipletState.DIRTY)
                entry.states[chiplet] = ChipletState.DIRTY
            elif entry.states[chiplet] is not ChipletState.DIRTY:
                # A read keeps a Dirty copy Dirty (Stay-in-Dirty rule);
                # anything else becomes Valid.
                self._trace_transition(entry, chiplet, ChipletState.VALID)
                entry.states[chiplet] = ChipletState.VALID
            entry.ranges[chiplet] = merge_ranges(entry.ranges[chiplet],
                                                 effective)
        entry.mode = region.mode
        return ops

    @staticmethod
    def _order_ops(release_targets: Set[int],
                   acquire_targets: Set[int]) -> List[SyncOp]:
        """Order the main op set.

        A chiplet in both sets gets release-then-acquire (flush before the
        invalidate drops the data). Otherwise acquires are issued first
        and releases after — the lazy-release rule of Sec. III-B.
        """
        ops: List[SyncOp] = []
        both = release_targets & acquire_targets
        for chiplet in sorted(both):
            ops.append(SyncOp(SyncOpKind.RELEASE, chiplet, reason="flush-before-inv"))
            ops.append(SyncOp(SyncOpKind.ACQUIRE, chiplet, reason="stale-range"))
        for chiplet in sorted(acquire_targets - both):
            ops.append(SyncOp(SyncOpKind.ACQUIRE, chiplet, reason="stale-range"))
        for chiplet in sorted(release_targets - both):
            ops.append(SyncOp(SyncOpKind.RELEASE, chiplet, reason="remote-consumer"))
        return ops
