"""Access regions: what one kernel does to one data structure.

The elision engine converts each kernel argument annotation plus the WG
scheduler's placement into an :class:`AccessRegion` — the data structure's
byte extent, the access mode, and the byte range each *physical* chiplet
will touch. Regions are also the unit the coarsening pass merges when a
kernel exceeds the table's per-kernel data-structure budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cp.packets import AccessMode, ArgAccess
from repro.cp.wg_scheduler import Placement

ByteRange = Tuple[int, int]


def ranges_overlap(a: Optional[ByteRange], b: Optional[ByteRange]) -> bool:
    """Whether two half-open byte ranges intersect (``None`` = empty)."""
    if a is None or b is None:
        return False
    return a[0] < b[1] and b[0] < a[1]


def merge_ranges(a: Optional[ByteRange], b: Optional[ByteRange]) -> Optional[ByteRange]:
    """Smallest range covering both inputs (conservative union)."""
    if a is None:
        return b
    if b is None:
        return a
    return (min(a[0], b[0]), max(a[1], b[1]))


def intersect_ranges(a: Optional[ByteRange],
                     b: Optional[ByteRange]) -> Optional[ByteRange]:
    """Intersection of two half-open ranges (``None`` if empty/unknown)."""
    if a is None or b is None:
        return None
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    return (lo, hi) if hi > lo else None


@dataclass
class AccessRegion:
    """One (possibly coarsened) data structure access by one kernel.

    Attributes:
        name: Data structure name(s); coarsened regions join names with '+'.
        base: Byte base of the covered extent.
        end: One past the last covered byte.
        mode: Access mode; coarsening keeps the more conservative (R/W).
        chiplet_ranges: Physical chiplet id -> byte range that chiplet
            touches (absent = chiplet does not touch the structure).
    """

    name: str
    base: int
    end: int
    mode: AccessMode
    chiplet_ranges: Dict[int, ByteRange] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end <= self.base:
            raise ValueError(f"region {self.name!r}: empty extent")

    @property
    def extent(self) -> ByteRange:
        """The covered byte extent."""
        return (self.base, self.end)

    def overlaps_extent(self, other: "AccessRegion") -> bool:
        """Whether the two regions' extents intersect."""
        return ranges_overlap(self.extent, other.extent)

    def gap_to(self, other: "AccessRegion") -> int:
        """Byte distance between the two extents (0 if adjacent/overlapping).

        Used by coarsening to pick the data structures closest to one
        another in memory (Sec. III-B).
        """
        if self.overlaps_extent(other):
            return 0
        if self.end <= other.base:
            return other.base - self.end
        return self.base - other.end


def region_from_arg(arg: ArgAccess, placement: Placement) -> AccessRegion:
    """Build the region a kernel argument covers under ``placement``.

    Each chiplet's touched byte range comes from the Listing 2 range
    annotations when present, otherwise from the even contiguous split
    implied by static kernel-wide WG partitioning.
    """
    chiplet_ranges: Dict[int, ByteRange] = {}
    n = placement.num_chiplets
    for logical, chiplet in enumerate(placement.chiplets):
        lo, hi = arg.range_for_logical_chiplet(logical, n)
        if hi > lo:
            chiplet_ranges[chiplet] = (lo, hi)
    return AccessRegion(
        name=arg.buffer.name,
        base=arg.buffer.base,
        end=arg.buffer.end,
        mode=arg.mode,
        chiplet_ranges=chiplet_ranges,
    )
