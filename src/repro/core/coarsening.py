"""Coarsening data-structure labels (Sec. III-B).

CPElide tracks up to 8 data structures per kernel. If a kernel accesses
more, the global CP coarsens before inserting into the Chiplet Coherence
Table: first it combines data structures that are contiguous in memory;
if none are contiguous it combines the structures closest to one another
in memory. A combined entry tracks all chiplets any constituent was
assigned to and stores the more conservative access mode — this may cause
extra acquire/releases (the memory between merged structures is covered
but never accessed) but preserves correctness.
"""

from __future__ import annotations

from typing import List

from repro.core.regions import AccessRegion, merge_ranges
from repro.cp.packets import AccessMode


def merge_two(a: AccessRegion, b: AccessRegion) -> AccessRegion:
    """Combine two regions into one conservative region."""
    lo_first, hi_second = (a, b) if a.base <= b.base else (b, a)
    mode = AccessMode.RW if (a.mode.writes or b.mode.writes) else AccessMode.R
    chiplet_ranges = dict(a.chiplet_ranges)
    for chiplet, rng in b.chiplet_ranges.items():
        chiplet_ranges[chiplet] = merge_ranges(chiplet_ranges.get(chiplet), rng)
    return AccessRegion(
        name=f"{lo_first.name}+{hi_second.name}",
        base=min(a.base, b.base),
        end=max(a.end, b.end),
        mode=mode,
        chiplet_ranges=chiplet_ranges,
    )


def coarsen_regions(regions: List[AccessRegion],
                    max_regions: int) -> List[AccessRegion]:
    """Merge regions until at most ``max_regions`` remain.

    Preference order per Sec. III-B: contiguous (or overlapping) extents
    first, then the pair with the smallest gap in memory.
    """
    if max_regions <= 0:
        raise ValueError(f"max_regions must be positive, got {max_regions}")
    merged = sorted(regions, key=lambda r: r.base)
    while len(merged) > max_regions:
        # Adjacent-in-address-order pairs are the only merge candidates:
        # merging non-adjacent pairs would cover strictly more unaccessed
        # memory than merging the pair between them.
        best_idx = 0
        best_gap = None
        for i in range(len(merged) - 1):
            gap = merged[i].gap_to(merged[i + 1])
            if best_gap is None or gap < best_gap:
                best_gap = gap
                best_idx = i
                if gap == 0:
                    break
        combined = merge_two(merged[best_idx], merged[best_idx + 1])
        merged[best_idx:best_idx + 2] = [combined]
    return merged
