"""CPElide per-chiplet data-structure states (Sec. III-B, Fig. 6).

Each Chiplet Coherence Table entry tracks, per chiplet, one of four states
encoded in 2 bits of the entry's chiplet vector. Unlike most coherence
protocols there are no transient states: the table is not waiting for
operations to complete, it denotes how data *will be* accessed in each
chiplet, updated at kernel launches. The state is a conservative,
coarse-grained estimate of a data structure's lines in that chiplet's L2 —
it may differ from the actual cache contents, always in the safe direction.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Tuple


class ChipletState(enum.IntEnum):
    """The four states of Fig. 6, with their 2-bit encodings."""

    #: The data structure does not exist in this chiplet's L2 (00).
    NOT_PRESENT = 0b00
    #: Clean data may be in this chiplet's L2 after a read-only kernel (01).
    VALID = 0b01
    #: Possibly-modified data may be in this chiplet's L2 after an R/W
    #: kernel (10). Another chiplet must trigger a flush before using it.
    DIRTY = 0b10
    #: Data may be in this chiplet's L2 but is no longer up to date because
    #: another chiplet wrote it (11). The chiplet must be invalidated
    #: before it safely accesses this data structure again.
    STALE = 0b11


#: Transitions Fig. 6 allows, as (from, to) pairs. Self-loops (local/remote
#: reads that keep the state, flushes of other structures) are always
#: legal and are not listed.
_LEGAL: FrozenSet[Tuple[ChipletState, ChipletState]] = frozenset({
    # A kernel scheduled here reads / writes the structure.
    (ChipletState.NOT_PRESENT, ChipletState.VALID),
    (ChipletState.NOT_PRESENT, ChipletState.DIRTY),
    (ChipletState.VALID, ChipletState.DIRTY),
    # Another chiplet will write the overlapping range.
    (ChipletState.VALID, ChipletState.STALE),
    (ChipletState.DIRTY, ChipletState.STALE),
    # A release (flush) writes dirty data back, retaining clean copies.
    (ChipletState.DIRTY, ChipletState.VALID),
    # An acquire (invalidate) drops everything in the chiplet's L2.
    (ChipletState.VALID, ChipletState.NOT_PRESENT),
    (ChipletState.DIRTY, ChipletState.NOT_PRESENT),
    (ChipletState.STALE, ChipletState.NOT_PRESENT),
    # After an acquire the chiplet may immediately re-read/rewrite.
    (ChipletState.STALE, ChipletState.VALID),
    (ChipletState.STALE, ChipletState.DIRTY),
})


def is_legal_transition(src: ChipletState, dst: ChipletState) -> bool:
    """Whether Fig. 6 permits moving from ``src`` to ``dst``.

    ``STALE -> VALID``/``STALE -> DIRTY`` are permitted only as the
    composite of an acquire followed by the new access; the table performs
    them as one step because both happen at the same kernel launch.
    """
    if src == dst:
        return True
    return (src, dst) in _LEGAL


def merge_conservative(a: ChipletState, b: ChipletState) -> ChipletState:
    """Combine two states into the more conservative one (coarsening).

    Sec. III-B: when entries are combined, the chiplet vector stores the
    more conservative of the states to ensure correctness. Conservatism
    order: a state requiring a flush (DIRTY) or an invalidate (STALE)
    dominates one that does not; between DIRTY and STALE we keep DIRTY,
    which forces a flush *and* leaves the copy subject to staleness
    tracking afterwards.
    """
    order = {
        ChipletState.NOT_PRESENT: 0,
        ChipletState.VALID: 1,
        ChipletState.STALE: 2,
        ChipletState.DIRTY: 3,
    }
    return a if order[a] >= order[b] else b
