"""CPElide core: the paper's primary contribution (Sec. III).

The global CP maintains a *Chiplet Coherence Table* in its private memory
tracking, per data structure and per chiplet, a conservative coarse-grained
estimate of what may be in each chiplet's L2 (:mod:`repro.core.table`,
states in :mod:`repro.core.states`). At every kernel launch the elision
engine (:mod:`repro.core.elision`) walks the kernel's argument annotations
and generates only the per-chiplet acquires and releases that correctness
requires, eliding the rest. Kernels touching more than the table's
per-kernel budget of data structures are coarsened first
(:mod:`repro.core.coarsening`).
"""

from repro.core.states import ChipletState, is_legal_transition
from repro.core.table import ChipletCoherenceTable, TableEntry
from repro.core.regions import AccessRegion, ranges_overlap
from repro.core.coarsening import coarsen_regions
from repro.core.elision import ElisionEngine, ElisionOutcome

__all__ = [
    "ChipletState",
    "is_legal_transition",
    "ChipletCoherenceTable",
    "TableEntry",
    "AccessRegion",
    "ranges_overlap",
    "coarsen_regions",
    "ElisionEngine",
    "ElisionOutcome",
]
