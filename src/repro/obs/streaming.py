"""Streaming tracer: live, thread-safe event feed for the job server.

:class:`StreamingTracer` implements the :class:`~repro.obs.tracer.Tracer`
protocol for a consumer on *another thread*: the simulation runs in a
worker thread and appends events, while an asyncio SSE handler
repeatedly :meth:`~StreamingTracer.drain`\\ s whatever arrived since its
cursor and forwards it to the client. Only the coarse progress hooks
record (run, kernel, memo, sweep-cell, shard) — the per-access firehose
stays off, so streaming costs one list append per kernel boundary, not
per cache line.

Events carry the same ``seq``/``kind``/``phase``/``args`` structure as
:class:`~repro.obs.tracer.EventTracer`'s, emitted from the same
tracepoint call sites in the same order, so a streamed kernel timeline
is ordering-identical to a recorded one (``tests/test_server.py`` pins
this).

The tracer doubles as the engine's *in-band cancellation point*: give
it a :class:`~repro.engine.jobs.CancelToken` and a tripped token raises
:class:`~repro.errors.JobCancelled` at the next kernel boundary,
unwinding the cell so its shared-cache claim is abandoned rather than
left to expire. This is the one deliberate exception to tracer purity —
a cancelled run produces no result at all, never a different one.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import Event, Tracer

__all__ = ["StreamingTracer"]


class StreamingTracer(Tracer):
    """Thread-safe progress tracer with an incremental drain cursor.

    Attributes:
        cancel: Optional :class:`~repro.engine.jobs.CancelToken`
            observed at kernel boundaries.
        kernels_done: Kernels completed so far (across all runs).
        runs_done: Simulations completed so far.
        cells_done: Sweep cells finished so far (``phase="end"``).
    """

    enabled = True

    def __init__(self, cancel: "Optional[Any]" = None,
                 max_events: int = 100_000) -> None:
        self.cancel = cancel
        self.kernels_done = 0
        self.runs_done = 0
        self.cells_done = 0
        self._events: List[Event] = []
        self._dropped = 0
        self._max_events = max_events
        self._seq = 0
        self._lock = threading.Lock()

    # ---- event plumbing -------------------------------------------------

    def _emit(self, kind: str, phase: str, args: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= self._max_events:
                # Bound memory on pathological sweeps; the counter keeps
                # the loss visible to consumers instead of silent.
                self._dropped += 1
                self._seq += 1
                return
            self._events.append(Event(seq=self._seq, ts=0.0, kind=kind,
                                      phase=phase, args=args))
            self._seq += 1

    def drain(self, cursor: int = 0) -> Tuple[int, List[Event]]:
        """Events recorded at positions >= ``cursor``; returns the new
        cursor. Safe to call from any thread while the simulation runs;
        repeated calls with the returned cursor see every event exactly
        once, in emission order."""
        with self._lock:
            events = self._events[cursor:]
            return cursor + len(events), events

    @property
    def dropped(self) -> int:
        """Events discarded after ``max_events`` was reached."""
        return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # ---- progress hooks --------------------------------------------------

    def run_begin(self, *, workload: str, protocol: str, num_chiplets: int,
                  clock_hz: float, trace_path: str = "") -> None:
        self._emit("run", "begin", {
            "workload": workload, "protocol": protocol,
            "num_chiplets": num_chiplets, "trace_path": trace_path})

    def run_end(self, *, wall_cycles: float, kernels: int) -> None:
        self.runs_done += 1
        self._emit("run", "end",
                   {"wall_cycles": wall_cycles, "kernels": kernels})

    def kernel_launch(self, *, name: str, index: int, stream: int,
                      chiplets: "tuple | list") -> None:
        self._emit("kernel", "launch", {
            "name": name, "index": index, "stream": stream,
            "chiplets": list(chiplets)})

    def kernel_complete(self, *, name: str, index: int, stream: int,
                        cycles: float, sync_cycles: float = 0.0,
                        lines: int = 0, lines_flushed: int = 0,
                        lines_invalidated: int = 0,
                        memo: Optional[str] = None) -> None:
        self.kernels_done += 1
        args: Dict[str, Any] = {
            "name": name, "index": index, "stream": stream,
            "cycles": cycles, "sync_cycles": sync_cycles}
        if memo is not None:
            args["memo"] = memo
        self._emit("kernel", "complete", args)
        if self.cancel is not None:
            # The kernel boundary is the engine's cancellation point:
            # unwinding here abandons the cell's shared-cache claim.
            self.cancel.raise_if_set()

    def memo_event(self, *, outcome: str, name: str, index: int) -> None:
        self._emit("memo", outcome, {"name": name, "index": index})

    def sweep_begin(self, *, label: str, cells: int) -> None:
        self._emit("sweep", "begin", {"label": label, "cells": cells})

    def sweep_cell(self, *, phase: str, label: str, cached: bool = False,
                   seconds: float = 0.0) -> None:
        if phase == "end":
            self.cells_done += 1
        self._emit("sweep", f"cell-{phase}", {
            "label": label, "cached": cached, "seconds": seconds})

    def shard_event(self, *, phase: str, shard: int, worker: str = "",
                    cells: int = 0, executed: int = 0, hits: int = 0,
                    deduped: int = 0, seconds: float = 0.0) -> None:
        self._emit("shard", phase, {
            "shard": shard, "worker": worker, "cells": cells,
            "executed": executed, "hits": hits, "deduped": deduped,
            "seconds": seconds})
