"""Hierarchical metric registry: counters, gauges, distributions.

One :class:`MetricRegistry` holds the metrics of one *scope* (a kernel,
a run, a sweep) plus named child registries for the scopes nested inside
it. Aggregation is explicit and loss-aware:

* **counters** sum across children (event totals: sync ops, lines
  flushed, memo hits);
* **gauges** take the maximum (level samples: table occupancy, pending
  releases — the peak is the capacity-relevant figure);
* **distributions** merge their moment summaries (count/total/min/max),
  so per-kernel cycle distributions fold into per-run and per-sweep
  ones without retaining every sample.

The registry is a pure observer: nothing in the simulator reads it, so
attaching one can never perturb simulation results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

__all__ = ["Distribution", "MetricRegistry"]


@dataclass
class Distribution:
    """Moment summary of an observed sample stream."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one sample in."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Distribution") -> None:
        """Fold another distribution's summary in."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        """Sample mean (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable summary."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": int(self.count), "total": float(self.total),
                "min": float(self.min), "max": float(self.max),
                "mean": float(self.mean)}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "Distribution":
        """Rebuild from :meth:`to_dict` output."""
        if not data.get("count"):
            return cls()
        return cls(count=int(data["count"]), total=float(data["total"]),
                   min=float(data["min"]), max=float(data["max"]))


class MetricRegistry:
    """Metrics of one scope plus its nested child scopes."""

    def __init__(self, scope: str = "root") -> None:
        self.scope = scope
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.distributions: Dict[str, Distribution] = {}
        self.children: Dict[str, MetricRegistry] = {}

    # ---- recording -----------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record a level sample; the registry keeps the maximum."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into distribution ``name``."""
        dist = self.distributions.get(name)
        if dist is None:
            dist = self.distributions[name] = Distribution()
        dist.observe(value)

    def child(self, scope: str) -> "MetricRegistry":
        """Fetch-or-create the nested registry named ``scope``."""
        reg = self.children.get(scope)
        if reg is None:
            reg = self.children[scope] = MetricRegistry(scope)
        return reg

    # ---- aggregation ---------------------------------------------------

    def merge(self, other: "MetricRegistry") -> None:
        """Fold ``other``'s own metrics (not its children) into this
        scope: counters sum, gauges max, distributions merge."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.gauges.items():
            self.gauge(name, value)
        for name, dist in other.distributions.items():
            mine = self.distributions.get(name)
            if mine is None:
                mine = self.distributions[name] = Distribution()
            mine.merge(dist)

    def aggregate(self) -> "MetricRegistry":
        """This scope with every descendant folded in (recursively).

        The per-kernel → per-run → per-sweep rollup: aggregating a sweep
        registry yields totals over every run and every kernel below it.
        """
        flat = MetricRegistry(self.scope)
        flat.merge(self)
        for chld in self.children.values():
            flat.merge(chld.aggregate())
        return flat

    @classmethod
    def aggregate_many(cls, registries: Iterable["MetricRegistry"],
                       scope: str = "aggregate") -> "MetricRegistry":
        """Aggregate several registries into one fresh scope."""
        out = cls(scope)
        for reg in registries:
            out.merge(reg.aggregate())
        return out

    # ---- serialization -------------------------------------------------

    def to_dict(self, include_children: bool = True) -> Dict[str, Any]:
        """JSON-serializable dump (sorted keys for stable output)."""
        out: Dict[str, Any] = {
            "scope": self.scope,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "distributions": {k: self.distributions[k].to_dict()
                              for k in sorted(self.distributions)},
        }
        if include_children:
            out["children"] = {k: self.children[k].to_dict()
                               for k in sorted(self.children)}
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricRegistry":
        """Rebuild a registry tree from :meth:`to_dict` output."""
        reg = cls(data.get("scope", "root"))
        reg.counters = dict(data.get("counters", {}))
        reg.gauges = dict(data.get("gauges", {}))
        reg.distributions = {k: Distribution.from_dict(v)
                             for k, v in data.get("distributions", {}).items()}
        reg.children = {k: cls.from_dict(v)
                        for k, v in data.get("children", {}).items()}
        return reg

    # ---- reporting -----------------------------------------------------

    def summary_lines(self, prefix: str = "") -> "list[str]":
        """Plain-text rendering of this scope's own metrics."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"{prefix}{name} = {self.counters[name]:g}")
        for name in sorted(self.gauges):
            lines.append(f"{prefix}{name} (peak) = {self.gauges[name]:g}")
        for name in sorted(self.distributions):
            d = self.distributions[name]
            lines.append(
                f"{prefix}{name}: n={d.count} mean={d.mean:g} "
                f"min={0.0 if d.count == 0 else d.min:g} "
                f"max={0.0 if d.count == 0 else d.max:g}")
        return lines
