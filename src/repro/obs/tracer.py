"""Kernel-boundary event tracing: the ``Tracer`` protocol.

The simulator, command processors, coherence table, and sweep engine are
instrumented with *tracepoints* — calls on the tracer they were handed.
Two implementations exist:

* :class:`NullTracer` (the default, exported as :data:`NULL_TRACER`):
  every tracepoint is an empty method and ``enabled`` is ``False``, so
  hot paths can skip even building event arguments. Simulations without
  a tracer attached pay one attribute check per *batch*, never per line.
* :class:`EventTracer`: records structured, timestamped
  :class:`Event`\\ s and feeds a hierarchical
  :class:`~repro.obs.metrics.MetricRegistry` (per-kernel scopes nested
  in per-run scopes). Timestamps are **simulated GPU cycles** on the
  owning stream's clock — deterministic, so traced runs are exactly
  reproducible — plus a global monotone sequence number.

Tracers are pure observers: every tracepoint receives copies of values
the simulator already computed, and nothing in the simulator reads
tracer state, so a traced run is bit-identical to an untraced one
(``tests/test_obs_differential.py`` is the referee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricRegistry

__all__ = ["Event", "EventTracer", "NULL_TRACER", "NullTracer", "Tracer"]


@dataclass
class Event:
    """One structured trace event.

    Attributes:
        seq: Global monotone sequence number (emission order).
        ts: Timestamp in simulated GPU cycles on the owning stream's
            clock (events at a kernel boundary carry the boundary's
            position; sweep-level events carry 0).
        kind: Event family (``run``, ``kernel``, ``sync``, ``table``,
            ``access``, ``memo``, ``dir``, ``lease``, ``sweep``).
        phase: Family-specific phase (``launch``, ``complete``,
            ``acquire``, ``insert``, …).
        args: Flat JSON-serializable payload.
    """

    seq: int
    ts: float
    kind: str
    phase: str
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dump (one JSONL record)."""
        return {"seq": self.seq, "ts": self.ts, "kind": self.kind,
                "phase": self.phase, "args": self.args}


class Tracer:
    """The tracepoint protocol; every hook is a no-op.

    Subclass and override what you need. ``enabled`` gates the hot-path
    tracepoints: instrumentation that would build non-trivial arguments
    checks it first, so a disabled tracer costs one attribute read.
    """

    enabled: bool = False

    # ---- run scope -----------------------------------------------------

    def run_begin(self, *, workload: str, protocol: str, num_chiplets: int,
                  clock_hz: float, trace_path: str = "") -> None:
        """One simulation starts."""

    def run_end(self, *, wall_cycles: float, kernels: int) -> None:
        """The simulation that :meth:`run_begin` opened finished."""

    # ---- kernel boundaries ---------------------------------------------

    def kernel_launch(self, *, name: str, index: int, stream: int,
                      chiplets: "tuple | list") -> None:
        """The global CP is launching a kernel (before its sync ops)."""

    def kernel_complete(self, *, name: str, index: int, stream: int,
                        cycles: float, sync_cycles: float = 0.0,
                        lines: int = 0, lines_flushed: int = 0,
                        lines_invalidated: int = 0,
                        memo: Optional[str] = None) -> None:
        """A kernel's metrics are final; advances the stream clock."""

    # ---- synchronization -----------------------------------------------

    def sync_op(self, *, kind: str, chiplet: int, reason: str,
                lines_flushed: int, lines_invalidated: int,
                boundary: str) -> None:
        """One acquire/release executed at a local CP, with its ACK line
        volumes. ``boundary`` is ``launch``, ``completion``, or
        ``run-end``."""

    # ---- Chiplet Coherence Table ---------------------------------------

    def table_insert(self, *, name: str, base: int, end: int,
                     rows: int) -> None:
        """A table row was created (``rows`` = occupancy after)."""

    def table_evict(self, *, name: str, base: int, end: int, rows: int,
                    reason: str) -> None:
        """A row left the table (overflow eviction, merge, or empty)."""

    def table_transition(self, *, name: str, chiplet: int, old: str,
                         new: str) -> None:
        """One chiplet's 2-bit state moved along a Fig. 6 edge."""

    # ---- demand accesses ------------------------------------------------

    def access_batch(self, *, arg: str, chiplet: int, lines: int,
                     local_lines: int, loads: bool, stores: bool) -> None:
        """One argument's per-chiplet slice was swept (local vs remote
        split per first-touch homes)."""

    # ---- memoization ----------------------------------------------------

    def memo_event(self, *, outcome: str, name: str, index: int) -> None:
        """Memo trace path: ``hit``, ``miss``, or ``bypass``."""

    # ---- HMG directory ---------------------------------------------------

    def directory_event(self, *, action: str, chiplet: int,
                        sharers: int = 0) -> None:
        """HMG per-home directory activity (``evict``/``invalidate``)."""

    # ---- timestamp leases -------------------------------------------------

    def lease_event(self, *, action: str, chiplet: int) -> None:
        """Timestamp-protocol self-invalidation (``expiry`` when the
        lease aged out, ``stale`` when a newer remote write stamped the
        line)."""

    # ---- sweep engine ----------------------------------------------------

    def sweep_begin(self, *, label: str, cells: int) -> None:
        """A sweep is about to execute ``cells`` jobs."""

    def sweep_cell(self, *, phase: str, label: str, cached: bool = False,
                   seconds: float = 0.0) -> None:
        """A sweep cell changed state (``begin``/``end``)."""

    def shard_event(self, *, phase: str, shard: int, worker: str = "",
                    cells: int = 0, executed: int = 0, hits: int = 0,
                    deduped: int = 0, seconds: float = 0.0) -> None:
        """Distributed engine: one work unit changed state.

        ``phase`` is ``scatter`` (the unit was created), ``begin``, or
        ``end`` (with the executing worker's id and its per-unit
        counters: cells executed, served from the shared cache, and
        served from another worker's in-flight computation)."""


class NullTracer(Tracer):
    """The zero-overhead default tracer (all hooks inherited no-ops)."""


#: Shared do-nothing tracer instance wired in wherever none was given.
NULL_TRACER = NullTracer()


class EventTracer(Tracer):
    """Records structured events and aggregates hierarchical metrics.

    Attributes:
        events: Every recorded :class:`Event`, in emission order.
        metrics: Root :class:`MetricRegistry`; each run gets a child
            scope (``run:NNN:<workload>/<protocol>``) holding per-kernel
            child scopes (``kernel:NNNN:<name>``). Use
            ``metrics.aggregate()`` for sweep-level totals.
        clock_hz: GPU clock of the most recent run (drives the
            cycles→microseconds conversion in the Chrome exporter).
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.metrics = MetricRegistry("trace")
        self.clock_hz: float = 1e9
        self._seq = 0
        self._runs = 0
        self._stream_clocks: Dict[int, float] = {}
        self._run_reg: Optional[MetricRegistry] = None
        self._kernel_reg: Optional[MetricRegistry] = None
        self._boundary_ts = 0.0

    # ---- internals -----------------------------------------------------

    def _emit(self, kind: str, phase: str, ts: float,
              args: Dict[str, Any]) -> Event:
        event = Event(seq=self._seq, ts=ts, kind=kind, phase=phase,
                      args=args)
        self._seq += 1
        self.events.append(event)
        return event

    def _scope(self) -> MetricRegistry:
        """Innermost open metric scope (kernel > run > root)."""
        if self._kernel_reg is not None:
            return self._kernel_reg
        if self._run_reg is not None:
            return self._run_reg
        return self.metrics

    # ---- run scope -----------------------------------------------------

    def run_begin(self, *, workload: str, protocol: str, num_chiplets: int,
                  clock_hz: float, trace_path: str = "") -> None:
        self.clock_hz = clock_hz
        self._stream_clocks = {}
        self._boundary_ts = 0.0
        self._run_reg = self.metrics.child(
            f"run:{self._runs:03d}:{workload}/{protocol}")
        self._runs += 1
        self._kernel_reg = None
        self._emit("run", "begin", 0.0, {
            "workload": workload, "protocol": protocol,
            "num_chiplets": num_chiplets, "clock_hz": clock_hz,
            "trace_path": trace_path})

    def run_end(self, *, wall_cycles: float, kernels: int) -> None:
        if self._run_reg is not None:
            self._run_reg.observe("run.wall_cycles", wall_cycles)
            self._run_reg.count("run.kernels", kernels)
        self._emit("run", "end", wall_cycles,
                   {"wall_cycles": wall_cycles, "kernels": kernels})
        self._run_reg = None
        self._kernel_reg = None

    # ---- kernel boundaries ---------------------------------------------

    def kernel_launch(self, *, name: str, index: int, stream: int,
                      chiplets: "tuple | list") -> None:
        ts = self._stream_clocks.get(stream, 0.0)
        self._boundary_ts = ts
        parent = self._run_reg if self._run_reg is not None else self.metrics
        self._kernel_reg = parent.child(f"kernel:{index:04d}:{name}")
        self._kernel_reg.count("kernel.launches")
        self._kernel_reg.gauge("kernel.chiplets_used", len(chiplets))
        self._emit("kernel", "launch", ts, {
            "name": name, "index": index, "stream": stream,
            "chiplets": list(chiplets)})

    def kernel_complete(self, *, name: str, index: int, stream: int,
                        cycles: float, sync_cycles: float = 0.0,
                        lines: int = 0, lines_flushed: int = 0,
                        lines_invalidated: int = 0,
                        memo: Optional[str] = None) -> None:
        start = self._stream_clocks.get(stream, 0.0)
        self._stream_clocks[stream] = start + cycles
        scope = self._scope()
        scope.observe("kernel.cycles", cycles)
        if sync_cycles:
            scope.observe("kernel.sync_cycles", sync_cycles)
        if lines:
            scope.count("access.trace_lines", lines)
        args: Dict[str, Any] = {
            "name": name, "index": index, "stream": stream,
            "cycles": cycles, "sync_cycles": sync_cycles, "lines": lines,
            "lines_flushed": lines_flushed,
            "lines_invalidated": lines_invalidated}
        if memo is not None:
            args["memo"] = memo
        self._emit("kernel", "complete", start + cycles, args)
        self._kernel_reg = None
        self._boundary_ts = start + cycles

    # ---- synchronization -----------------------------------------------

    def sync_op(self, *, kind: str, chiplet: int, reason: str,
                lines_flushed: int, lines_invalidated: int,
                boundary: str) -> None:
        scope = self._scope()
        scope.count(f"sync.{kind}s")
        if lines_flushed:
            scope.count("sync.lines_flushed", lines_flushed)
            scope.observe("sync.flush_lines_per_op", lines_flushed)
        if lines_invalidated:
            scope.count("sync.lines_invalidated", lines_invalidated)
            scope.observe("sync.invalidate_lines_per_op", lines_invalidated)
        self._emit("sync", kind, self._boundary_ts, {
            "chiplet": chiplet, "reason": reason,
            "lines_flushed": lines_flushed,
            "lines_invalidated": lines_invalidated, "boundary": boundary})

    # ---- Chiplet Coherence Table ---------------------------------------

    def table_insert(self, *, name: str, base: int, end: int,
                     rows: int) -> None:
        scope = self._scope()
        scope.count("table.inserts")
        scope.gauge("table.rows", rows)
        self._emit("table", "insert", self._boundary_ts, {
            "name": name, "base": base, "end": end, "rows": rows})

    def table_evict(self, *, name: str, base: int, end: int, rows: int,
                    reason: str) -> None:
        scope = self._scope()
        scope.count(f"table.evictions.{reason}")
        self._emit("table", "evict", self._boundary_ts, {
            "name": name, "base": base, "end": end, "rows": rows,
            "reason": reason})

    def table_transition(self, *, name: str, chiplet: int, old: str,
                         new: str) -> None:
        self._scope().count(f"table.transitions.{old}->{new}")
        self._emit("table", "transition", self._boundary_ts, {
            "name": name, "chiplet": chiplet, "old": old, "new": new})

    # ---- demand accesses ------------------------------------------------

    def access_batch(self, *, arg: str, chiplet: int, lines: int,
                     local_lines: int, loads: bool, stores: bool) -> None:
        scope = self._scope()
        scope.count("access.local_lines", local_lines)
        scope.count("access.remote_lines", lines - local_lines)
        scope.observe("access.batch_lines", lines)
        self._emit("access", "batch", self._boundary_ts, {
            "arg": arg, "chiplet": chiplet, "lines": lines,
            "local_lines": local_lines, "remote_lines": lines - local_lines,
            "loads": loads, "stores": stores})

    # ---- memoization ----------------------------------------------------

    def memo_event(self, *, outcome: str, name: str, index: int) -> None:
        self._scope().count(f"memo.{outcome}")
        ts = self._boundary_ts
        self._emit("memo", outcome, ts, {"name": name, "index": index})

    # ---- HMG directory ---------------------------------------------------

    def directory_event(self, *, action: str, chiplet: int,
                        sharers: int = 0) -> None:
        self._scope().count(f"dir.{action}s")
        self._emit("dir", action, self._boundary_ts,
                   {"chiplet": chiplet, "sharers": sharers})

    # ---- timestamp leases -------------------------------------------------

    def lease_event(self, *, action: str, chiplet: int) -> None:
        self._scope().count(f"lease.{action}s")
        self._emit("lease", action, self._boundary_ts,
                   {"chiplet": chiplet})

    # ---- sweep engine ----------------------------------------------------

    def sweep_begin(self, *, label: str, cells: int) -> None:
        self.metrics.count("sweep.cells", cells)
        self._emit("sweep", "begin", 0.0, {"label": label, "cells": cells})

    def sweep_cell(self, *, phase: str, label: str, cached: bool = False,
                   seconds: float = 0.0) -> None:
        if phase == "end":
            self.metrics.count("sweep.cells_cached" if cached
                               else "sweep.cells_executed")
            if not cached:
                self.metrics.observe("sweep.cell_seconds", seconds)
        self._emit("sweep", f"cell-{phase}", 0.0, {
            "label": label, "cached": cached, "seconds": seconds})

    def shard_event(self, *, phase: str, shard: int, worker: str = "",
                    cells: int = 0, executed: int = 0, hits: int = 0,
                    deduped: int = 0, seconds: float = 0.0) -> None:
        if phase == "end":
            self.metrics.count("dist.shards")
            self.metrics.count("dist.cells_executed", executed)
            self.metrics.count("dist.cells_hit", hits)
            self.metrics.count("dist.cells_deduped", deduped)
            self.metrics.observe("dist.shard_seconds", seconds)
        self._emit("shard", phase, 0.0, {
            "shard": shard, "worker": worker, "cells": cells,
            "executed": executed, "hits": hits, "deduped": deduped,
            "seconds": seconds})

    # ---- introspection ---------------------------------------------------

    def events_of(self, kind: str, phase: Optional[str] = None) -> List[Event]:
        """Recorded events filtered by ``kind`` (and optionally phase)."""
        return [e for e in self.events
                if e.kind == kind and (phase is None or e.phase == phase)]

    def clear(self) -> None:
        """Drop all recorded events and metrics (sequence keeps rising,
        so event ordering stays globally monotone)."""
        self.events = []
        self.metrics = MetricRegistry("trace")
        self._run_reg = None
        self._kernel_reg = None
