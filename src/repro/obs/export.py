"""Trace exporters: JSONL, Chrome ``trace_event`` (Perfetto), CSV, text.

All exporters consume a finished :class:`~repro.obs.tracer.EventTracer`
(or its event list / metric registry) and are deterministic: the same
simulation produces byte-identical exports, because event timestamps are
simulated cycles, not wall-clock time.

The Chrome export loads directly in https://ui.perfetto.dev (or
``chrome://tracing``): kernels render as duration slices per stream,
sync operations / table activity / access batches as instant events per
chiplet. See ``docs/observability.md`` for the how-to.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO

from repro.obs.metrics import MetricRegistry
from repro.obs.tracer import Event, EventTracer

__all__ = [
    "chrome_trace",
    "events_jsonl",
    "distributions_csv",
    "text_summary",
    "write_trace",
]

#: Chrome-trace process ids per event family (process_name metadata is
#: emitted so Perfetto shows readable track group names).
_PIDS = {
    "kernel": (1, "kernels (per stream)"),
    "sync": (2, "sync ops (per chiplet)"),
    "table": (3, "coherence table"),
    "access": (4, "access batches (per chiplet)"),
    "memo": (5, "memoization"),
    "dir": (6, "HMG directory"),
    "run": (0, "run"),
    "sweep": (0, "run"),
}


def _us(cycles: float, clock_hz: float) -> float:
    """Simulated cycles → trace microseconds."""
    return cycles / clock_hz * 1e6


def chrome_trace(tracer: EventTracer) -> Dict[str, Any]:
    """Build a Chrome ``trace_event``-format document (JSON-ready).

    Kernel launch/complete pairs become ``X`` (complete) duration events
    on their stream's track; everything else becomes an instant event on
    its family's track. Timestamps are non-decreasing (Perfetto requires
    monotone ``ts`` per track; we sort globally).
    """
    clock = tracer.clock_hz
    out: List[Dict[str, Any]] = []
    for pid, label in sorted(set(_PIDS.values())):
        out.append({"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                    "args": {"name": label}})
    body: List[Dict[str, Any]] = []
    for ev in tracer.events:
        pid, _ = _PIDS.get(ev.kind, (0, "run"))
        if ev.kind == "kernel" and ev.phase == "complete":
            cycles = float(ev.args.get("cycles", 0.0))
            start = ev.ts - cycles
            body.append({
                "ph": "X", "pid": pid, "tid": int(ev.args.get("stream", 0)),
                "name": str(ev.args.get("name", "kernel")),
                "cat": "kernel",
                "ts": _us(start, clock), "dur": _us(cycles, clock),
                "args": ev.args,
            })
            continue
        if ev.kind == "kernel" and ev.phase == "launch":
            # The matching complete event renders the duration slice.
            continue
        tid = int(ev.args.get("chiplet", ev.args.get("stream", 0)) or 0)
        body.append({
            "ph": "i", "s": "t", "pid": pid, "tid": tid,
            "name": f"{ev.kind}:{ev.phase}", "cat": ev.kind,
            "ts": _us(ev.ts, clock), "args": ev.args,
        })
    body.sort(key=lambda e: (e["ts"], e.get("dur", 0.0)))
    return {"traceEvents": out + body, "displayTimeUnit": "ms"}


def events_jsonl(events: Iterable[Event]) -> str:
    """One compact JSON object per line, in emission (seq) order."""
    return "\n".join(json.dumps(ev.to_dict(), sort_keys=True,
                                separators=(",", ":"))
                     for ev in events) + "\n"


def distributions_csv(registry: MetricRegistry) -> str:
    """CSV of every distribution in the aggregated registry tree.

    Columns: ``scope,name,count,total,mean,min,max``. Counters and peak
    gauges are appended as single-row summaries (count/total columns)
    so one file carries the whole registry.
    """
    lines = ["scope,name,count,total,mean,min,max"]

    def _walk(reg: MetricRegistry, path: str) -> None:
        scope = path or reg.scope
        for name in sorted(reg.distributions):
            d = reg.distributions[name]
            lo = 0.0 if d.count == 0 else d.min
            hi = 0.0 if d.count == 0 else d.max
            lines.append(f"{scope},{name},{d.count},{d.total:g},"
                         f"{d.mean:g},{lo:g},{hi:g}")
        for name in sorted(reg.counters):
            lines.append(f"{scope},{name},1,{reg.counters[name]:g},"
                         f"{reg.counters[name]:g},,")
        for name in sorted(reg.gauges):
            lines.append(f"{scope},{name}.peak,1,{reg.gauges[name]:g},"
                         f"{reg.gauges[name]:g},,")
        for child_name in sorted(reg.children):
            _walk(reg.children[child_name], f"{scope}/{child_name}")

    _walk(registry, "")
    return "\n".join(lines) + "\n"


def text_summary(tracer: EventTracer, limit: Optional[int] = 40) -> str:
    """Plain-text report: event census, aggregated metrics, sync trace.

    The trailing section lists the first ``limit`` synchronization
    events in order — the human-readable sync trace the CLI prints.
    """
    lines: List[str] = []
    census: Dict[str, int] = {}
    for ev in tracer.events:
        key = f"{ev.kind}:{ev.phase}"
        census[key] = census.get(key, 0) + 1
    lines.append(f"events recorded: {len(tracer.events)}")
    for key in sorted(census):
        lines.append(f"  {key}: {census[key]}")
    agg = tracer.metrics.aggregate()
    metric_lines = agg.summary_lines(prefix="  ")
    if metric_lines:
        lines.append("aggregated metrics:")
        lines.extend(metric_lines)
    sync_events = [e for e in tracer.events if e.kind in ("sync", "memo")]
    lines.append(f"sync trace ({len(sync_events)} events"
                 + (f", showing {min(limit, len(sync_events))}"
                    if limit is not None else "") + "):")
    shown = sync_events if limit is None else sync_events[:limit]
    for ev in shown:
        a = ev.args
        if ev.kind == "memo":
            lines.append(f"  [{ev.ts:14.1f}] memo {ev.phase}: "
                         f"kernel {a.get('index')} {a.get('name')}")
            continue
        moved = (f"{a.get('lines_flushed', 0)} flushed"
                 if ev.phase == "release"
                 else f"{a.get('lines_invalidated', 0)} invalidated")
        lines.append(f"  [{ev.ts:14.1f}] {ev.phase} chiplet "
                     f"{a.get('chiplet')} @{a.get('boundary')}: {moved}"
                     + (f" ({a.get('reason')})" if a.get("reason") else ""))
    return "\n".join(lines)


def write_trace(tracer: EventTracer, path: str,
                fmt: Optional[str] = None) -> str:
    """Write the trace to ``path`` in ``fmt`` (inferred from the
    extension when ``None``: ``.json`` → Chrome trace, ``.csv`` → CSV
    distributions, anything else → JSONL). Returns the format used."""
    if fmt is None:
        if path.endswith(".json"):
            fmt = "chrome"
        elif path.endswith(".csv"):
            fmt = "csv"
        else:
            fmt = "jsonl"
    if fmt == "chrome":
        payload = json.dumps(chrome_trace(tracer))
    elif fmt == "csv":
        payload = distributions_csv(tracer.metrics.aggregate())
    elif fmt == "jsonl":
        payload = events_jsonl(tracer.events)
    elif fmt == "text":
        payload = text_summary(tracer) + "\n"
    else:
        from repro.errors import ConfigError
        raise ConfigError(f"unknown trace export format {fmt!r}; choose "
                          "from chrome/csv/jsonl/text")
    with open(path, "w") as fh:
        fh.write(payload)
    return fmt
