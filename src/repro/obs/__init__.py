"""``repro.obs`` — the observability layer.

Kernel-boundary event tracing (:class:`Tracer` / :class:`EventTracer`),
a hierarchical :class:`MetricRegistry`, and exporters (JSONL, Chrome
``trace_event`` for Perfetto, CSV, plain text). Attach a tracer through
the facade::

    from repro.api import simulate
    from repro.obs import EventTracer, chrome_trace

    tracer = EventTracer()
    result = simulate("square", "cpelide", tracer=tracer)
    open("square.json", "w").write(json.dumps(chrome_trace(tracer)))

Tracing is a pure observer: traced runs are bit-identical to untraced
ones on every trace path, and the disabled default
(:data:`NULL_TRACER`) is free on the hot paths.
"""

from repro.obs.metrics import Distribution, MetricRegistry
from repro.obs.streaming import StreamingTracer
from repro.obs.tracer import (
    Event,
    EventTracer,
    NULL_TRACER,
    NullTracer,
    Tracer,
)
from repro.obs.export import (
    chrome_trace,
    distributions_csv,
    events_jsonl,
    text_summary,
    write_trace,
)

__all__ = [
    "Distribution",
    "Event",
    "EventTracer",
    "MetricRegistry",
    "NULL_TRACER",
    "NullTracer",
    "StreamingTracer",
    "Tracer",
    "chrome_trace",
    "distributions_csv",
    "events_jsonl",
    "text_summary",
    "write_trace",
]
