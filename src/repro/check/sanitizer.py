"""Coherence invariant sanitizer (the ``repro.check`` tentpole).

Hooks the simulator at kernel boundaries and asserts the semantic
invariants CPElide is built on, at cache-line granularity:

* **Legal state transitions** — every Chiplet Coherence Table row moves
  only along the NP/Valid/Dirty/Stale edges Fig. 6 allows, per chiplet,
  across each kernel launch.
* **Op-set exactness** — the launch-time flush/invalidate set equals
  what the pre-launch table state mandates: a release for exactly the
  chiplets holding Dirty data another accessor overlaps, an acquire for
  exactly the chiplets accessing a range that is Stale on them.
* **No stale reads** — after a launch installs the new kernel's
  accesses, no chiplet's tracked range may still be Stale where that
  chiplet is about to access it.
* **Dirty-tracking completeness** — every dirty L2 line sits under a
  table row that marks its chiplet Dirty (forward-to-home protocols).
* **Home residency** — forward-to-home protocols never cache a line in
  a chiplet whose home is elsewhere.
* **HMG directory consistency** — a remotely-cached line's home
  directory lists the cacher as a sharer, and write-through L2s are
  never dirty.
* **Lease exactness** (timestamp protocols) — the lease ledger tracks
  exactly the resident L2 lines, no lease or write-stamp postdates the
  epoch clock, and a line's home copy is never older than its latest
  write. Additionally, a per-serve observer asserts that every read a
  lease validates comes from a copy filled at or after the line's
  latest write stamp and within its lease — the "no read from a copy
  that predates the latest remote write" guarantee, recomputed from the
  ledger primitives independently of the protocol's serve decision.
* **Run-end flush completeness** — a whole-cache release executed at
  run end leaves its L2 with zero dirty lines.

The sanitizer only *reads* simulator state (LRU orders, stats and
placement decisions are never perturbed), so a checked run produces
bit-identical results to an unchecked one — the differential tests rely
on this. Enable it per-config with ``GPUConfig.check_invariants=True``
or globally with ``REPRO_CHECK=1``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

from repro.core.coarsening import coarsen_regions
from repro.errors import InvariantViolation
from repro.core.regions import ranges_overlap, region_from_arg
from repro.core.states import ChipletState, is_legal_transition, merge_conservative
from repro.cp.local_cp import SyncOp, SyncOpKind
from repro.memory.cache import WritePolicy

#: Environment variable that force-enables the sanitizer for every
#: simulator in the process (the per-config ``check_invariants`` flag
#: enables it for one configuration). ``"0"`` and the empty string mean
#: disabled, anything else enables.
CHECK_ENV = "REPRO_CHECK"

#: Ops whose ``reason`` carries this prefix are the conservative
#: fallback for a table row evicted on overflow; they are mandated by
#: the eviction, not by the pre-launch table state, so the op-set
#: exactness check excludes them.
_OVERFLOW_PREFIX = "table-overflow"

#: Snapshot of one table row: (name, base, end, states, ranges).
_RowSnap = Tuple[str, int, int, Tuple[ChipletState, ...], tuple]


class CheckError(InvariantViolation):
    """A coherence invariant was violated.

    Derives from :class:`~repro.errors.InvariantViolation` (itself an
    ``AssertionError``): a violation is a simulator bug, never a
    workload property, and must abort the run loudly.
    """


def checks_enabled(config) -> bool:
    """Whether the sanitizer should run for ``config``.

    True when the config opts in (``check_invariants``) or the
    ``REPRO_CHECK`` environment variable is set to anything but ``""``
    or ``"0"``.
    """
    if getattr(config, "check_invariants", False):
        return True
    return os.environ.get(CHECK_ENV, "") not in ("", "0")


class SyncSanitizer:
    """Asserts coherence invariants over one simulation run.

    The :class:`~repro.gpu.sim.Simulator` drives the hooks in order, per
    kernel: :meth:`before_launch` (snapshot), :meth:`after_launch`
    (table transition / op-set / stale-read checks), :meth:`after_kernel`
    (cache-line walks), and once per run :meth:`after_run` (run-end
    flush completeness). Memo-path replayed kernels skip the per-kernel
    hooks (their states are restored wholesale from a recording that was
    itself checked); the differential oracle covers them cross-path.
    """

    def __init__(self, config, device, protocol) -> None:
        self.config = config
        self.device = device
        self.protocol = protocol
        #: CPElide-family protocols expose the Chiplet Coherence Table;
        #: table invariants are skipped for the others.
        self.table = getattr(protocol, "table", None)
        #: HMG-family protocols expose per-home L2 directories.
        self.directories = getattr(protocol, "directories", None)
        #: Timestamp-family protocols expose the lease ledger; when
        #: present, hook the per-serve observer (which also disables the
        #: protocols' bulk fast paths — bit-identical by the batched
        #: equivalence invariant, so checked runs stay comparable).
        self.leases = getattr(protocol, "leases", None)
        if self.leases is not None:
            protocol.lease_observer = self._observe_lease_serve
        #: Kernel boundaries fully checked (meta-tests assert coverage).
        self.kernels_checked = 0
        self._pre_rows: Optional[List[_RowSnap]] = None

    # ------------------------------------------------------------------

    def _fail(self, invariant: str, detail: str) -> None:
        raise CheckError(
            f"[{getattr(self.protocol, 'name', self.protocol)}] "
            f"{invariant}: {detail}")

    # ------------------------------------------------------------------
    # Kernel-launch hooks (table-level invariants)
    # ------------------------------------------------------------------

    def before_launch(self) -> None:
        """Snapshot the table rows the launch is about to transform."""
        if self.table is not None:
            self._pre_rows = [
                (e.name, e.base, e.end, tuple(e.states), tuple(e.ranges))
                for e in self.table.entries]

    def after_launch(self, packet, placement, decision) -> None:
        """Check the launch against the :meth:`before_launch` snapshot."""
        if self.table is None:
            return
        pre_rows = self._pre_rows or []
        self._pre_rows = None
        regions = self._launch_regions(packet, placement)
        self._check_op_sets(packet, regions, pre_rows, decision.launch_ops)
        self._check_transitions(packet, pre_rows)
        self._check_no_stale_access(packet, regions)

    def _launch_regions(self, packet, placement) -> list:
        """The access regions exactly as the elision engine saw them
        (same coarsening cut-off, so the reference op sets below are
        computed over identical inputs)."""
        regions = [region_from_arg(arg, placement) for arg in packet.args]
        if len(regions) > self.table.structs_per_kernel:
            regions = coarsen_regions(regions, self.table.structs_per_kernel)
        return regions

    def _check_op_sets(self, packet, regions, pre_rows: List[_RowSnap],
                       launch_ops: List[SyncOp]) -> None:
        """Launch flushes/invalidates must match the pre-launch table
        state exactly — no missing sync (dirty-drop / stale-read hazard)
        and no spurious sync (elision regression)."""
        want_release: Set[int] = set()
        want_acquire: Set[int] = set()
        for region in regions:
            for _name, base, end, states, held_ranges in pre_rows:
                if not ranges_overlap((base, end), (region.base, region.end)):
                    continue
                for holder, state in enumerate(states):
                    held = held_ranges[holder]
                    if state is ChipletState.DIRTY:
                        for accessor, rng in region.chiplet_ranges.items():
                            if accessor != holder and ranges_overlap(held, rng):
                                want_release.add(holder)
                                break
                    elif state is ChipletState.STALE:
                        rng = region.chiplet_ranges.get(holder)
                        if rng is not None and ranges_overlap(held, rng):
                            want_acquire.add(holder)

        if getattr(self.protocol, "lease_acquires", False):
            # Lease-hybrid protocols replace acquire-side invalidation
            # with self-invalidating leases: the table may mandate
            # acquires, but the launch must drop every one of them.
            want_acquire.clear()

        got_release: Set[int] = set()
        got_acquire: Set[int] = set()
        for op in launch_ops:
            if op.reason.startswith(_OVERFLOW_PREFIX):
                continue
            if op.kind is SyncOpKind.RELEASE:
                got_release.add(op.chiplet)
            else:
                got_acquire.add(op.chiplet)

        if got_release != want_release or got_acquire != want_acquire:
            self._fail(
                "op-set-mismatch",
                f"kernel {packet.kernel_id} ({packet.name}): table state "
                f"mandates releases={sorted(want_release)} "
                f"acquires={sorted(want_acquire)}, launch issued "
                f"releases={sorted(got_release)} "
                f"acquires={sorted(got_acquire)}")

    def _check_transitions(self, packet, pre_rows: List[_RowSnap]) -> None:
        """Every post-launch row state must be reachable from the
        (conservatively merged) pre-launch state of its extent via a
        legal Fig. 6 edge. Rows merge and extend across launches, so
        each post row is compared against the merge of every pre row its
        extent overlaps (an uncovered extent starts from Not Present)."""
        for entry in self.table.entries:
            for chiplet, post in enumerate(entry.states):
                pre = ChipletState.NOT_PRESENT
                for _name, base, end, states, _ranges in pre_rows:
                    if ranges_overlap((base, end), (entry.base, entry.end)):
                        pre = merge_conservative(pre, states[chiplet])
                if not is_legal_transition(pre, post):
                    self._fail(
                        "illegal-transition",
                        f"kernel {packet.kernel_id} ({packet.name}): row "
                        f"{entry.name!r} chiplet {chiplet} moved "
                        f"{pre.name} -> {post.name}, which Fig. 6 forbids")

    def _check_no_stale_access(self, packet, regions) -> None:
        """After the launch installed the new accesses, no chiplet may
        be left Stale on a range it is about to access — that access
        would read data another chiplet overwrote."""
        for region in regions:
            for entry in self.table.find_overlapping(region.base, region.end):
                for chiplet, rng in region.chiplet_ranges.items():
                    if (entry.states[chiplet] is ChipletState.STALE
                            and ranges_overlap(entry.ranges[chiplet], rng)):
                        self._fail(
                            "stale-read",
                            f"kernel {packet.kernel_id} ({packet.name}): "
                            f"chiplet {chiplet} accesses "
                            f"{rng} of row {entry.name!r} while the table "
                            f"still marks it STALE over "
                            f"{entry.ranges[chiplet]} — a missing acquire")

    # ------------------------------------------------------------------
    # Post-kernel hook (cache-line-level invariants)
    # ------------------------------------------------------------------

    def after_kernel(self, packet) -> None:
        """Walk the caches after a kernel (and its completion hook)."""
        if self.protocol.caches_remote_locally:
            self._check_hmg_lines(packet)
        else:
            self._check_home_lines(packet)
        if self.leases is not None:
            self._check_lease_state(packet)
        self.kernels_checked += 1

    def _check_home_lines(self, packet) -> None:
        """Forward-to-home protocols: residency and dirty tracking."""
        device = self.device
        peek = device.home_map.peek_home_of_line
        line_size = self.config.line_size
        check_table = self.table is not None
        # Tracked ranges are the table's first-touch estimate of each
        # chiplet's home extent; the device assigns homes at page
        # granularity, so actual dirty lines may round past the tracked
        # range by up to one page at each end.
        slack = self.config.scaled_page_lines * line_size
        for chiplet, l2 in enumerate(device.l2s):
            for line, dirty in l2.iter_lines():
                home = peek(line)
                if home != chiplet:
                    self._fail(
                        "remote-residency",
                        f"kernel {packet.kernel_id} ({packet.name}): line "
                        f"{line} homed at chiplet {home} is cached in "
                        f"chiplet {chiplet}'s L2 under forward-to-home "
                        f"routing")
                if not dirty or not check_table:
                    continue
                addr = line * line_size
                tracked = False
                covered = False
                for entry in self.table.find_overlapping(addr,
                                                         addr + line_size):
                    covered = True
                    if entry.states[chiplet] is not ChipletState.DIRTY:
                        continue
                    rng = entry.ranges[chiplet]
                    if rng is not None and ranges_overlap(
                            (rng[0] - slack, rng[1] + slack),
                            (addr, addr + line_size)):
                        tracked = True
                        break
                if not tracked:
                    self._fail(
                        "untracked-dirty",
                        f"kernel {packet.kernel_id} ({packet.name}): dirty "
                        f"line {line} in chiplet {chiplet}'s L2 is "
                        + ("not marked DIRTY by any covering table row"
                           if covered else
                           "not covered by any table row")
                        + " — a later consumer would miss its flush")

    def _check_hmg_lines(self, packet) -> None:
        """HMG: write policy and directory sharer completeness."""
        device = self.device
        peek = device.home_map.peek_home_of_line
        directories = self.directories
        write_through = (getattr(self.protocol, "l2_policy", None)
                         is WritePolicy.WRITE_THROUGH)
        for chiplet, l2 in enumerate(device.l2s):
            for line, dirty in l2.iter_lines():
                if dirty and write_through:
                    self._fail(
                        "wt-dirty-line",
                        f"kernel {packet.kernel_id} ({packet.name}): "
                        f"write-through L2 of chiplet {chiplet} holds "
                        f"dirty line {line}")
                if directories is None:
                    continue
                home = peek(line)
                if home is None or home == chiplet:
                    continue
                directory = directories[home]
                entry = directory.peek(directory.region_of(line))
                if entry is None or chiplet not in entry.sharers:
                    self._fail(
                        "directory-sharer-missing",
                        f"kernel {packet.kernel_id} ({packet.name}): line "
                        f"{line} is cached remotely in chiplet {chiplet} "
                        f"but home {home}'s directory does not list it as "
                        f"a sharer — a store would fail to invalidate it")

    def _check_lease_state(self, packet) -> None:
        """Timestamp protocols: the lease ledger must mirror the caches
        exactly (every resident line leased, every lease resident), no
        bookkeeping may postdate the epoch clock, and a line cached at
        its *home* chiplet must be at least as new as the line's latest
        write stamp (the home-always-fresh invariant both protocols'
        remote-serve paths rely on)."""
        leases = self.leases
        device = self.device
        peek = device.home_map.peek_home_of_line
        clock = leases.clock
        for chiplet, l2 in enumerate(device.l2s):
            resident = {line for line, _dirty in l2.iter_lines()}
            leased = set(leases.fills[chiplet])
            if resident != leased:
                self._fail(
                    "lease-residency-drift",
                    f"kernel {packet.kernel_id} ({packet.name}): chiplet "
                    f"{chiplet} leases drifted from its L2 contents "
                    f"(leased-not-resident="
                    f"{sorted(leased - resident)[:8]}, "
                    f"resident-not-leased="
                    f"{sorted(resident - leased)[:8]})")
            for line, fill in leases.fills[chiplet].items():
                if fill > clock:
                    self._fail(
                        "lease-from-the-future",
                        f"kernel {packet.kernel_id} ({packet.name}): line "
                        f"{line} on chiplet {chiplet} was filled at epoch "
                        f"{fill} > clock {clock}")
                if (peek(line) == chiplet
                        and fill < leases.stamps.get(line, fill)):
                    self._fail(
                        "stale-home-copy",
                        f"kernel {packet.kernel_id} ({packet.name}): home "
                        f"chiplet {chiplet}'s copy of line {line} (filled "
                        f"at {fill}) predates the line's write stamp "
                        f"{leases.stamps[line]} — a write bypassed the "
                        f"home L2")
        for line, stamp in leases.stamps.items():
            if stamp > clock:
                self._fail(
                    "stamp-from-the-future",
                    f"kernel {packet.kernel_id} ({packet.name}): line "
                    f"{line} carries write stamp {stamp} > clock {clock}")

    def _observe_lease_serve(self, chiplet: int, line: int) -> None:
        """Per-serve invariant, recomputed from the ledger primitives:
        a lease-validated read must come from a copy that is leased,
        unexpired, and filled at or after the line's latest write stamp
        (no read may ever observe a copy predating a remote write)."""
        leases = self.leases
        fill = leases.fills[chiplet].get(line)
        if fill is None:
            self._fail(
                "lease-serve-unleased",
                f"chiplet {chiplet} served line {line} from its L2 "
                f"without holding a lease on it")
        if leases.clock - fill >= leases.lease:
            self._fail(
                "lease-expired-serve",
                f"chiplet {chiplet} served line {line} from a copy "
                f"filled at epoch {fill}, expired since epoch "
                f"{fill + leases.lease} (clock {leases.clock})")
        stamp = leases.stamps.get(line)
        if stamp is not None and fill < stamp:
            self._fail(
                "lease-stale-serve",
                f"chiplet {chiplet} served line {line} from a copy "
                f"filled at epoch {fill} that predates the line's write "
                f"stamp {stamp} — a stale read")

    # ------------------------------------------------------------------
    # Run-end hook
    # ------------------------------------------------------------------

    def after_run(self, ops: List[SyncOp]) -> None:
        """A whole-cache release executed at run end must leave the
        target L2 with no dirty line (host visibility of all results)."""
        for op in ops:
            if op.kind is not SyncOpKind.RELEASE or op.ranges is not None:
                continue
            remaining = self.device.l2s[op.chiplet].dirty_lines
            if remaining:
                self._fail(
                    "unflushed-at-run-end",
                    f"chiplet {op.chiplet}'s L2 still holds {remaining} "
                    f"dirty line(s) after the end-of-run release")
