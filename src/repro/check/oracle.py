"""Differential oracle: cross-trace-path / cross-protocol result check.

Runs each workload through every requested (protocol, trace path) cell
with direct :class:`~repro.gpu.sim.Simulator` instances (no engine, no
result cache — the oracle must observe what simulation *produces*, not
what a cache replays) and demands, per (workload, protocol):

* the full serialized result (``SimulationResult.to_dict()``) is
  bit-identical across the line, run and memo trace paths, and
* the final machine state — per-chiplet L2 contents, L3 contents,
  first-touch page homes, and the protocol's own state (coherence table
  rows or HMG directories) — is identical too.

On a metrics mismatch the report pinpoints the first divergent kernel
and the exact metric key paths that differ. ``python -m repro check``
is the CLI front end; CI runs it over a reduced matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.gpu.trace_path import TracePath
from repro.workloads.suite import WORKLOAD_NAMES, build_workload

#: Trace paths every cell is cross-checked over (the full enum: line
#: reference, batched run path, memoized run path).
DEFAULT_TRACE_PATHS: Tuple[TracePath, ...] = tuple(TracePath)

#: The oracle's protocol matrix: the paper's three head-to-head designs
#: plus the timestamp/lease protocol and the CPElide-timestamp hybrid
#: ({line,run,memo} x 5 protocols x 8 workloads = 120 cells). Any
#: registry name is accepted via ``--protocols``.
DEFAULT_PROTOCOLS: Tuple[str, ...] = (
    "baseline", "hmg", "cpelide", "timestamp", "cpelide-ts")

#: Cap on reported diff lines per divergence (full dicts can differ in
#: thousands of leaves once one kernel diverges; the first few localize
#: the bug).
MAX_DIFF_LINES = 12


@dataclass
class Divergence:
    """One (workload, protocol) cell whose trace paths disagree."""

    workload: str
    protocol: str
    trace_path: str
    reference_path: str
    kind: str  # "metrics" | "state"
    kernel_index: Optional[int]
    details: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """Multi-line human-readable report of this divergence."""
        where = (f"first divergent kernel: #{self.kernel_index}"
                 if self.kernel_index is not None else "run-level")
        lines = [
            f"{self.workload} / {self.protocol}: trace path "
            f"{self.trace_path!r} diverges from {self.reference_path!r} "
            f"({self.kind}; {where})"
        ]
        lines += [f"  {d}" for d in self.details]
        return "\n".join(lines)


@dataclass
class OracleReport:
    """Aggregate outcome of one oracle sweep."""

    cells: int = 0
    runs: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every cell agreed across all trace paths."""
        return not self.divergences


def diff_paths(a: Any, b: Any, prefix: str = "") -> List[str]:
    """Recursive key-path diff of two JSON-like values.

    Returns one ``"path: a != b"`` line per differing leaf (type
    mismatches and length mismatches count as one leaf each).
    """
    if isinstance(a, dict) and isinstance(b, dict):
        out: List[str] = []
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a:
                out.append(f"{path}: <missing> != {b[key]!r}")
            elif key not in b:
                out.append(f"{path}: {a[key]!r} != <missing>")
            else:
                out.extend(diff_paths(a[key], b[key], path))
        return out
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return [f"{prefix}: length {len(a)} != {len(b)}"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(diff_paths(x, y, f"{prefix}[{i}]"))
        return out
    if a != b:
        return [f"{prefix}: {a!r} != {b!r}"]
    return []


def final_state_fingerprint(sim: Simulator) -> Dict[str, str]:
    """Canonical post-run machine state of ``sim``'s last run.

    Component name -> ``repr`` of its behavioral state. Components are
    compared individually so a mismatch names the diverging structure.

    Cache contents are compared as sorted ``(line, dirty)`` sets, not
    raw ``memo_state()``: the batched trace path replays a kernel's
    accesses in run order rather than line order, which permutes LRU /
    insertion order inside a set without changing which lines are
    resident or dirty. Residency and dirtiness are the architectural
    state; recency order is a path artifact.
    """
    device = sim.last_device
    protocol = sim.last_protocol
    assert device is not None and protocol is not None
    state: Dict[str, str] = {}
    for chiplet, l2 in enumerate(device.l2s):
        state[f"l2[{chiplet}]"] = repr(sorted(l2.iter_lines()))
    state["l3"] = repr(sorted(device.l3.iter_lines()))
    state["page_homes"] = repr(device.home_map.page_homes())
    snapshot = protocol.memo_snapshot()
    if snapshot is not None:
        state["protocol"] = repr(snapshot)
    return state


def _first_divergent_kernel(ref: Dict[str, Any],
                            got: Dict[str, Any]) -> Tuple[Optional[int],
                                                          List[str]]:
    """Locate the first kernel whose metrics differ, with a leaf diff.

    Falls back to a run-level diff when the per-kernel lists agree but
    some aggregate (energy, wall cycles) does not.
    """
    ref_kernels = ref.get("metrics", {}).get("kernels", [])
    got_kernels = got.get("metrics", {}).get("kernels", [])
    for index, (rk, gk) in enumerate(zip(ref_kernels, got_kernels)):
        diff = diff_paths(rk, gk)
        if diff:
            return index, diff
    if len(ref_kernels) != len(got_kernels):
        return None, [f"kernel count: {len(ref_kernels)} != "
                      f"{len(got_kernels)}"]
    return None, diff_paths(ref, got)


def run_oracle(workloads: Optional[Sequence[str]] = None,
               protocols: Sequence[str] = DEFAULT_PROTOCOLS,
               trace_paths: Sequence[Union[TracePath, str]]
               = DEFAULT_TRACE_PATHS,
               config: Optional[GPUConfig] = None,
               scheduler: str = "static",
               progress: Optional[Callable[[str], None]] = None
               ) -> OracleReport:
    """Run the differential sweep and return its report.

    ``config.check_invariants`` additionally runs the sanitizer inside
    every simulation. The memo path starts from a cleared memo store per
    cell so results never depend on what an earlier cell recorded, and
    within the cell still exercises record + in-run replay.
    """
    from repro.gpu.memo import clear_memo_stores

    if workloads is None:
        workloads = list(WORKLOAD_NAMES)
    trace_paths = tuple(TracePath.coerce(p) for p in trace_paths)
    if len(trace_paths) < 2:
        raise ConfigError(
            f"the oracle needs at least two trace paths to compare, got "
            f"{[str(p) for p in trace_paths]}")
    if config is None:
        config = GPUConfig()
    report = OracleReport()
    for workload_name in workloads:
        for protocol in protocols:
            report.cells += 1
            reference_path = trace_paths[0]
            payloads: Dict[str, Dict[str, Any]] = {}
            states: Dict[str, Dict[str, str]] = {}
            for trace_path in trace_paths:
                if trace_path is TracePath.MEMO:
                    clear_memo_stores()
                workload = build_workload(workload_name, config)
                sim = Simulator(config, protocol, scheduler=scheduler,
                                trace_path=trace_path)
                result = sim.run(workload)
                report.runs += 1
                payloads[trace_path] = result.to_dict()
                states[trace_path] = final_state_fingerprint(sim)
            ref_payload = payloads[reference_path]
            ref_state = states[reference_path]
            cell_ok = True
            for trace_path in trace_paths[1:]:
                if payloads[trace_path] != ref_payload:
                    cell_ok = False
                    index, diff = _first_divergent_kernel(
                        ref_payload, payloads[trace_path])
                    dropped = max(0, len(diff) - MAX_DIFF_LINES)
                    diff = diff[:MAX_DIFF_LINES]
                    if dropped:
                        diff.append(f"... {dropped} more differing leaves")
                    report.divergences.append(Divergence(
                        workload=workload_name, protocol=protocol,
                        trace_path=str(trace_path),
                        reference_path=str(reference_path),
                        kind="metrics", kernel_index=index, details=diff))
                state_diff = [
                    f"{component}: state differs"
                    for component in sorted(set(ref_state)
                                            | set(states[trace_path]))
                    if ref_state.get(component)
                    != states[trace_path].get(component)]
                if state_diff:
                    cell_ok = False
                    report.divergences.append(Divergence(
                        workload=workload_name, protocol=protocol,
                        trace_path=str(trace_path),
                        reference_path=str(reference_path),
                        kind="state", kernel_index=None,
                        details=state_diff[:MAX_DIFF_LINES]))
            if progress is not None:
                status = "ok" if cell_ok else "DIVERGED"
                progress(f"{workload_name} x {protocol}: {status} "
                         f"({'/'.join(trace_paths)})")
    return report
