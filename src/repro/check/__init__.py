"""Opt-in correctness tooling: the coherence sanitizer and the
cross-protocol / cross-trace-path differential oracle.

Three result-producing trace paths (line, run, memo) plus a persistent
result cache give the simulator four ways to diverge silently. This
package is the correctness backstop:

* :mod:`repro.check.sanitizer` asserts cache-line-level coherence
  invariants at every kernel boundary (enabled per-config via
  ``GPUConfig.check_invariants`` or globally via ``REPRO_CHECK=1``);
* :mod:`repro.check.oracle` runs the workload suite across
  {line, run, memo} x {baseline, HMG, CPElide} and reports the first
  divergent kernel with a state diff (``python -m repro check``).
"""

from repro.check.sanitizer import (
    CHECK_ENV,
    CheckError,
    SyncSanitizer,
    checks_enabled,
)

__all__ = [
    "CHECK_ENV",
    "CheckError",
    "SyncSanitizer",
    "checks_enabled",
]
